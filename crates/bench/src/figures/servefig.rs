//! BENCH: multi-tenant serving (the `serve` pseudo-figure).
//!
//! Runs the three canonical [`SoakScenario`]s of the job service —
//! balanced quotas, 1/2/4 weighted shares, and balanced-with-chaos —
//! and tabulates throughput, p50/p99 chain latency and Jain's fairness
//! index over weight-normalised early grants. The fairness gate
//! asserts the balanced scenario schedules with Jain ≥
//! [`JAIN_GATE`] and zero digest mismatches; the chaos scenario
//! additionally demonstrates that recomputation under multi-tenant
//! contention stays byte-exact (or fails typed).

use crate::table;
use rcmp_serve::soak::{run_scenario, SoakReport, SoakScenario};
use serde::Serialize;

/// Minimum Jain's index the balanced-quota scenario must reach.
pub const JAIN_GATE: f64 = 0.9;

/// The serve benchmark: one report per scenario plus the gate verdict.
#[derive(Clone, Debug, Serialize)]
pub struct ServeBench {
    /// One soak report per scenario, in run order.
    pub scenarios: Vec<SoakReport>,
    /// The fairness gate threshold applied to the balanced scenario.
    pub jain_gate: f64,
    /// Whether the balanced scenario passed the gate (fair and
    /// byte-exact).
    pub gate_passed: bool,
}

/// Runs the three scenarios. `chaos_seed` feeds the chaos scenario's
/// randomized injector (replayable).
pub fn run(chaos_seed: u64) -> ServeBench {
    let scenarios = vec![
        run_scenario(&SoakScenario::balanced()).expect("balanced scenario"),
        run_scenario(&SoakScenario::weighted()).expect("weighted scenario"),
        run_scenario(&SoakScenario::chaos(chaos_seed)).expect("chaos scenario"),
    ];
    let gate_passed = scenarios
        .iter()
        .find(|s| s.scenario == "balanced")
        .is_some_and(|s| s.jain >= JAIN_GATE && s.digest_mismatches == 0 && s.failed == 0);
    ServeBench {
        scenarios,
        jain_gate: JAIN_GATE,
        gate_passed,
    }
}

impl ServeBench {
    /// ASCII table, one row per scenario.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "scenario".to_string(),
            "chains".to_string(),
            "ok".to_string(),
            "failed".to_string(),
            "rejects".to_string(),
            "thr c/s".to_string(),
            "p50 ms".to_string(),
            "p99 ms".to_string(),
            "jain".to_string(),
            "verified".to_string(),
            "mismatch".to_string(),
        ]];
        for s in &self.scenarios {
            rows.push(vec![
                s.scenario.clone(),
                s.chains.to_string(),
                s.completed.to_string(),
                s.failed.to_string(),
                s.rejected_submissions.to_string(),
                format!("{:.1}", s.throughput_cps),
                s.p50_ms.to_string(),
                s.p99_ms.to_string(),
                format!("{:.3}", s.jain),
                s.digests_verified.to_string(),
                s.digest_mismatches.to_string(),
            ]);
        }
        let mut out = table::render(&rows);
        out.push_str(&format!(
            "balanced fairness gate (jain >= {:.2}): {}\n",
            self.jain_gate,
            if self.gate_passed { "PASS" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_passes_its_own_gate() {
        let bench = run(0x5eed);
        assert_eq!(bench.scenarios.len(), 3);
        assert!(bench.gate_passed, "balanced scenario must be fair");
        for s in &bench.scenarios {
            assert_eq!(s.digest_mismatches, 0, "{}: wrong bytes", s.scenario);
        }
        let text = bench.render();
        assert!(text.contains("balanced") && text.contains("chaos"));
    }
}
