//! Supplementary experiments beyond the paper's figures, quantifying
//! three of its *arguments* (§III, §IV-C):
//!
//! * **Locality ablation** (§III-A "data locality is oftentimes
//!   inconsequential"): collocated vs non-collocated job time across
//!   fabric speeds — locality only matters when the network is the
//!   bottleneck.
//! * **Speculation futility** (§III-A "up to 90% of speculatively
//!   executed tasks provide no benefits"): speculation statistics under
//!   the post-failure hot-spot, with and without alternate replicas.
//! * **Dynamic replication intervals** (§IV-C future work): the
//!   break-even replication-point interval as a function of the failure
//!   rate — making "occasional failures ⇒ replication unwarranted"
//!   quantitative.

use crate::table;
use rcmp_core::DynamicPolicy;
use rcmp_model::{ByteSize, SlotConfig};
use rcmp_sim::jobsim::RecomputeSpec;
use rcmp_sim::{HwProfile, JobSim, SimState, SpeculationCfg, WorkloadCfg};
use serde::{Deserialize, Serialize};

// ------------------------------------------------------ locality ablation

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LocalityPoint {
    /// Fraction of the 10 GbE fabric available.
    pub fabric_factor: f64,
    pub collocated_secs: f64,
    pub noncollocated_secs: f64,
    pub penalty: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LocalityAblation {
    pub points: Vec<LocalityPoint>,
}

fn ablation_workload(scale_down: u64) -> WorkloadCfg {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = ByteSize::gib(4) / scale_down.max(1);
    wl
}

/// Sweeps fabric speed, comparing collocated vs non-collocated runs.
pub fn locality_ablation(scale_down: u64) -> LocalityAblation {
    let wl = ablation_workload(scale_down);
    let points = [1.0f64, 0.5, 0.1, 0.05, 0.01]
        .into_iter()
        .map(|fabric| {
            let mut hw = HwProfile::stic();
            hw.fabric_factor = fabric;
            let run = |noncol: bool| {
                let mut js = JobSim::new(hw.clone(), wl.clone());
                if noncol {
                    js = js.noncollocated();
                }
                let mut st = SimState::new(&wl);
                js.run_full(&mut st, 1, 1, true).unwrap().duration
            };
            let collocated = run(false);
            let noncollocated = run(true);
            LocalityPoint {
                fabric_factor: fabric,
                collocated_secs: collocated,
                noncollocated_secs: noncollocated,
                penalty: noncollocated / collocated,
            }
        })
        .collect();
    LocalityAblation { points }
}

impl LocalityAblation {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "fabric".to_string(),
            "collocated".to_string(),
            "non-collocated".to_string(),
            "penalty".to_string(),
        ]];
        for p in &self.points {
            rows.push(vec![
                format!("{:.0}%", p.fabric_factor * 100.0),
                table::secs(p.collocated_secs),
                table::secs(p.noncollocated_secs),
                table::factor(p.penalty),
            ]);
        }
        format!(
            "Extra — locality ablation (§III-A): giving up locality costs\n\
             little until the network becomes the bottleneck\n{}",
            table::render(&rows)
        )
    }
}

// -------------------------------------------------- speculation futility

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeculationReport {
    pub scenario: String,
    pub speculated: usize,
    pub wins: usize,
    pub futile_fraction: f64,
}

/// Speculation statistics in the post-failure hot-spot recomputation
/// (single-replicated intermediates: duplicates have nowhere better to
/// read) vs a replicated-input run with a dead node (alternates exist).
pub fn speculation_futility(scale_down: u64) -> Vec<SpeculationReport> {
    let mut wl = ablation_workload(scale_down);
    wl.jobs = 2;
    let mk = || {
        JobSim::new(HwProfile::stic(), wl.clone())
            .with_speculation(SpeculationCfg { slow_factor: 1.3 })
    };

    // Scenario 1: hot-spot recompute over single-replicated data.
    let js = mk();
    let mut st = SimState::new(&wl);
    js.run_full(&mut st, 1, 1, true).unwrap();
    js.run_full(&mut st, 2, 1, true).unwrap();
    st.fail_node(wl.nodes - 1);
    let lost1 = st.files[&1].lost_partitions(&st);
    let lost2 = st.files[&2].lost_partitions(&st);
    js.run_recompute(
        &mut st,
        1,
        &RecomputeSpec::new(lost1.iter().copied(), 1),
        true,
    )
    .unwrap();
    // Re-run every mapper of job 2 so the wave mixes fast local reads
    // with the slow reads of the regenerated (single-replica) partition:
    // the relative stragglers the speculator looks for.
    let mut spec2 = RecomputeSpec::new(lost2.iter().copied(), 1);
    spec2.reuse_map_outputs = false;
    let rec = js.run_recompute(&mut st, 2, &spec2, true).unwrap();
    let hot = SpeculationReport {
        scenario: "hot-spot recompute (1 replica)".to_string(),
        speculated: rec.speculation.speculated,
        wins: rec.speculation.wins,
        futile_fraction: rec.speculation.futile_fraction(),
    };

    // Scenario 2: replicated input with a dead node (alternates exist).
    let js = mk();
    let mut st = SimState::new(&wl);
    st.fail_node(wl.nodes - 1);
    let r = js.run_full(&mut st, 1, 1, true).unwrap();
    let replicated = SpeculationReport {
        scenario: "replicated input, 1 node dead".to_string(),
        speculated: r.speculation.speculated,
        wins: r.speculation.wins,
        futile_fraction: r.speculation.futile_fraction(),
    };

    vec![hot, replicated]
}

pub fn render_speculation(reports: &[SpeculationReport]) -> String {
    let mut rows = vec![vec![
        "scenario".to_string(),
        "speculated".to_string(),
        "wins".to_string(),
        "futile".to_string(),
    ]];
    for r in reports {
        rows.push(vec![
            r.scenario.clone(),
            r.speculated.to_string(),
            r.wins.to_string(),
            format!("{:.0}%", r.futile_fraction * 100.0),
        ]);
    }
    format!(
        "Extra — speculation futility (§III-A): duplicates only win when\n\
         an alternate replica exists and the slowness is input-bound\n{}",
        table::render(&rows)
    )
}

// --------------------------------------------- dynamic hybrid intervals

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DynamicIntervalPoint {
    pub failure_prob_per_job: f64,
    /// Break-even replication-point interval (None = never replicate).
    pub interval: Option<u32>,
}

/// Break-even intervals across failure rates for a 10-node cluster with
/// factor-2 points.
pub fn dynamic_intervals() -> Vec<DynamicIntervalPoint> {
    [1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0]
        .into_iter()
        .map(|p| {
            let policy = DynamicPolicy {
                failure_prob_per_job: p,
                extra_replicas: 1,
                replication_byte_cost: 1.0,
                recompute_fraction: 0.1,
            };
            DynamicIntervalPoint {
                failure_prob_per_job: p,
                interval: policy.break_even_interval(),
            }
        })
        .collect()
}

pub fn render_dynamic(points: &[DynamicIntervalPoint]) -> String {
    let mut rows = vec![vec![
        "P(failure per job)".to_string(),
        "replicate every N jobs".to_string(),
    ]];
    for p in points {
        rows.push(vec![
            format!("{}", p.failure_prob_per_job),
            match p.interval {
                Some(k) => k.to_string(),
                None => "never".to_string(),
            },
        ]);
    }
    format!(
        "Extra — dynamic replication points (§IV-C future work):\n\
         break-even interval vs failure rate (10 nodes, factor 2)\n{}",
        table::render(&rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_penalty_grows_as_fabric_shrinks() {
        let a = locality_ablation(8);
        assert!(
            a.points.first().unwrap().penalty < 1.3,
            "fast fabric: small penalty"
        );
        assert!(
            a.points.last().unwrap().penalty > a.points.first().unwrap().penalty,
            "penalty grows as the fabric shrinks"
        );
        assert!(a.render().contains("penalty"));
    }

    #[test]
    fn hotspot_speculation_is_futile() {
        let reports = speculation_futility(8);
        let hot = &reports[0];
        assert!(hot.speculated > 0, "hot-spot triggers speculation");
        assert!(
            hot.futile_fraction >= 0.9,
            "single-replicated duplicates mostly futile: {hot:?}"
        );
        assert!(render_speculation(&reports).contains("futile"));
    }

    #[test]
    fn dynamic_interval_monotone() {
        let pts = dynamic_intervals();
        let mut last = u32::MAX;
        for p in &pts {
            let k = p.interval.unwrap_or(u32::MAX);
            assert!(k <= last, "interval shrinks as failures grow");
            last = k;
        }
        // Rare failures: effectively never replicate.
        assert!(pts[0].interval.unwrap_or(u32::MAX) > 10_000);
        assert!(render_dynamic(&pts).contains("never") || pts.iter().all(|p| p.interval.is_some()));
    }
}
