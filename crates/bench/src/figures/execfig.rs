//! Pseudo-figure `exec`: wave throughput of the executor backends at
//! DCO scale (60 nodes, 1200–4800 slot tasks per wave — Fig. 11's
//! largest cluster). Compares the per-slot-thread backend against the
//! cooperative async reactor at worker counts {1, 4, num_cpus}; the
//! async rows show what a single process pays to multiplex thousands of
//! simulated slots over a bounded OS-thread pool.

use crate::table;
use rcmp_exec::{AsyncExecutor, Executor, SlotTask, TaskCtx, ThreadedExecutor, WaveSpec};
use rcmp_model::ClusterConfig;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One (backend, workers, tasks) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecBenchRow {
    /// `threaded` or `async`.
    pub backend: String,
    /// Worker OS threads (for `threaded`: one per task, reported as 0).
    pub workers: u32,
    /// Slot tasks in the wave.
    pub tasks: u32,
    /// Best-of-repeats wall time for the wave, in microseconds.
    pub wave_micros: f64,
    /// Derived throughput.
    pub tasks_per_sec: f64,
}

/// The full measurement matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecBench {
    /// Cluster scale the wave shapes are drawn from (DCO: 60 nodes).
    pub nodes: u32,
    pub rows: Vec<ExecBenchRow>,
}

impl ExecBench {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "backend".to_string(),
            "workers".to_string(),
            "tasks".to_string(),
            "wave".to_string(),
            "tasks/s".to_string(),
        ]];
        for r in &self.rows {
            rows.push(vec![
                r.backend.clone(),
                if r.workers == 0 {
                    "per-task".to_string()
                } else {
                    r.workers.to_string()
                },
                r.tasks.to_string(),
                format!("{:.1}us", r.wave_micros),
                format!("{:.0}", r.tasks_per_sec),
            ]);
        }
        format!(
            "exec: wave throughput, {} nodes\n{}",
            self.nodes,
            table::render(&rows)
        )
    }
}

/// The wave shapes measured: one to four full DCO map waves' worth of
/// slot tasks (60 nodes × 20 mapper partitions per node = 1200, up to
/// the 4800-task acceptance shape).
pub fn task_counts() -> [u32; 3] {
    [1200, 2400, 4800]
}

/// Async worker counts measured: serial, a small fixed pool, and the
/// machine's parallelism.
pub fn worker_counts() -> Vec<u32> {
    let cpus = std::thread::available_parallelism().map_or(4, |n| n.get() as u32);
    let mut counts = vec![1, 4, cpus];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// A representative slot-task body: a little deterministic bookkeeping
/// arithmetic so the measurement is dominated by executor overhead plus
/// a non-zero unit of work, like the engine's memory-speed tasks.
fn slot_body(i: u64) -> u64 {
    let mut acc = i;
    for k in 0..64u64 {
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ k;
    }
    acc
}

fn make_wave<'env>(tasks: u32) -> Vec<SlotTask<'env, u64>> {
    (0..u64::from(tasks))
        .map(|i| SlotTask::new(move |_: &TaskCtx| std::hint::black_box(slot_body(i))))
        .collect()
}

/// Times one wave of `tasks` slot tasks on `exec`.
pub fn time_wave<E: Executor>(exec: &E, tasks: u32, seed: u64) -> Duration {
    let wave = make_wave(tasks);
    let spec = WaveSpec::new("bench-wave", seed);
    let start = Instant::now();
    let outcomes = exec.run_wave(&spec, wave);
    let elapsed = start.elapsed();
    assert_eq!(outcomes.len(), tasks as usize);
    elapsed
}

fn best_of<E: Executor>(exec: &E, tasks: u32, repeats: u32) -> Duration {
    (0..repeats)
        .map(|r| time_wave(exec, tasks, u64::from(r)))
        .min()
        .unwrap_or(Duration::ZERO)
}

/// Runs the full matrix: threaded, then async at each worker count.
pub fn run() -> ExecBench {
    const REPEATS: u32 = 3;
    let nodes = ClusterConfig::dco().nodes;
    let mut rows = Vec::new();
    let mut push = |backend: &str, workers: u32, tasks: u32, d: Duration| {
        let micros = d.as_secs_f64() * 1e6;
        rows.push(ExecBenchRow {
            backend: backend.to_string(),
            workers,
            tasks,
            wave_micros: micros,
            tasks_per_sec: if micros > 0.0 {
                f64::from(tasks) / d.as_secs_f64()
            } else {
                0.0
            },
        });
    };
    for tasks in task_counts() {
        let threaded = ThreadedExecutor::new();
        push("threaded", 0, tasks, best_of(&threaded, tasks, REPEATS));
        for workers in worker_counts() {
            let exec = AsyncExecutor::new(workers);
            push("async", workers, tasks, best_of(&exec, tasks, REPEATS));
        }
    }
    ExecBench { nodes, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_backends_and_scales() {
        // One repeat at the smallest shape keeps the unit test quick:
        // the full matrix is the bench target's job.
        let exec = AsyncExecutor::new(1);
        let d = time_wave(&exec, 64, 7);
        assert!(d > Duration::ZERO);
        assert!(task_counts().contains(&4800));
        assert!(worker_counts().contains(&1));
    }
}
