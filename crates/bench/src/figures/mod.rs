//! One module per paper figure. Every module exposes `run()` returning
//! a serializable result with a `render()` ASCII table matching the
//! figure's rows/series.

pub mod chainfig;
pub mod execfig;
pub mod extras;
pub mod fig02;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod obsfig;
pub mod placementfig;
pub mod resiliencefig;
pub mod servefig;
pub mod shufflefig;
pub mod tracefig;

use rcmp_model::SlotConfig;
use rcmp_sim::{HwProfile, WorkloadCfg};

/// One evaluation cluster scenario (the paper's legend entries).
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: &'static str,
    pub hw: HwProfile,
    pub wl: WorkloadCfg,
    /// The paper's reducer split ratio for this cluster (8 on STIC, 59
    /// on DCO).
    pub split: u32,
}

/// The three scenarios of Fig. 8: SLOTS 1-1 STIC 40GB, SLOTS 2-2 STIC
/// 40GB, SLOTS 1-1 DCO 1.2TB.
pub fn paper_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "SLOTS 1-1, STIC, 40GB",
            hw: HwProfile::stic(),
            wl: WorkloadCfg::stic(SlotConfig::ONE_ONE),
            split: 8,
        },
        Scenario {
            name: "SLOTS 2-2, STIC, 40GB",
            hw: HwProfile::stic(),
            wl: WorkloadCfg::stic(SlotConfig::TWO_TWO),
            split: 8,
        },
        Scenario {
            name: "SLOTS 1-1, DCO, 1.2TB",
            hw: HwProfile::dco(),
            wl: WorkloadCfg::dco(),
            split: 59,
        },
    ]
}

/// A quick variant for unit tests and Criterion runs: same shape, a
/// fraction of the task counts.
pub fn quick_scenarios() -> Vec<Scenario> {
    paper_scenarios()
        .into_iter()
        .map(|mut s| {
            s.wl.per_node_input = s.wl.per_node_input / 4;
            s
        })
        .collect()
}
