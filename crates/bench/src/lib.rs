//! The experiment harness: regenerates every figure of the RCMP paper.
//!
//! Each `figures::figXX` module runs the corresponding experiment
//! (simulator-based at paper scale; real-engine based where data-path
//! fidelity matters), returns a serializable result, and renders the
//! same rows/series the paper reports. The `fig_runner` binary drives
//! them; `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! | Figure | Module | What it shows |
//! |--------|--------|----------------|
//! | Fig. 2 | [`figures::fig02`] | CDF of new failures/day (STIC, SUG@R) |
//! | Fig. 8a | [`figures::fig08`] | No-failure slowdowns (RCMP vs REPL-2/3) |
//! | Fig. 8b | [`figures::fig08`] | Single failure early (job 2) |
//! | Fig. 8c | [`figures::fig08`] | Single failure late (job 7) |
//! | Fig. 9 | [`figures::fig09`] | Double failures vs Hadoop REPL-3 |
//! | Fig. 10 | [`figures::fig10`] | Chain-length extrapolation |
//! | Fig. 11 | [`figures::fig11`] | Split speed-up vs node count |
//! | Fig. 12 | [`figures::fig12`] | Hot-spot mapper-time CDF |
//! | Fig. 13 | [`figures::fig13`] | Speed-up vs reducer waves |
//! | Fig. 14 | [`figures::fig14`] | Speed-up vs mapper waves |

pub mod figures;
pub mod numerical;
pub mod table;
