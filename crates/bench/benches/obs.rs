//! Telemetry-overhead benchmarks: the flight recorder's single-call
//! cost, the phase profiler's attribution cost, and the full-tier
//! A/B wave from the `obs` pseudo-figure. After the Criterion groups
//! run, the 4800-task acceptance gate is re-measured and written to
//! `results/BENCH_obs.json` (`fig_runner obs --json results` produces
//! the same file), and the process fails if the full tier exceeds the
//! 5% wall-clock budget.

use criterion::{criterion_group, Criterion};
use rcmp_bench::figures::obsfig;
use rcmp_obs::{Clock, EventCode, FlightRecorder, PhaseKind, PhaseProfiler};
use std::io::Write;

fn bench_record(c: &mut Criterion) {
    let recorder = FlightRecorder::with_defaults(Clock::monotonic());
    let disabled = FlightRecorder::disabled();
    let mut g = c.benchmark_group("obs_record");
    g.bench_function("enabled", |b| {
        b.iter(|| recorder.record(EventCode::Probe, None, 1, 2))
    });
    g.bench_function("disabled", |b| {
        b.iter(|| disabled.record(EventCode::Probe, None, 1, 2))
    });
    g.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let profiler = PhaseProfiler::new(Clock::monotonic());
    let mut g = c.benchmark_group("obs_profiler");
    g.bench_function("add_ns", |b| {
        b.iter(|| profiler.add_ns(PhaseKind::MapCompute, 1_000))
    });
    g.bench_function("span", |b| {
        b.iter(|| drop(profiler.span(PhaseKind::MapCompute)))
    });
    g.finish();
}

fn bench_wave_ab(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_wave_1200");
    g.sample_size(10);
    g.bench_function("ab", |b| b.iter(|| obsfig::run_with(1200, 1)));
    g.finish();
}

criterion_group!(obs, bench_record, bench_profiler, bench_wave_ab);

fn main() {
    obs();
    let bench = obsfig::run_scaled(1);
    println!("{}", bench.render());
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = serde_json::to_string_pretty(&serde_json::to_value(&bench).unwrap()).unwrap();
        match std::fs::File::create(format!("{dir}/BENCH_obs.json")) {
            Ok(mut f) => f.write_all(json.as_bytes()).expect("write BENCH_obs.json"),
            Err(e) => eprintln!("skipping BENCH_obs.json: {e}"),
        }
    }
    assert!(
        bench.within_budget,
        "telemetry overhead {:.2}% exceeds the {:.1}% budget",
        bench.overhead_pct, bench.budget_pct
    );
}
