//! Wave-throughput benchmarks for the executor backends at DCO scale:
//! 60 nodes' worth of slot tasks per wave (1200–4800), threaded vs the
//! async reactor at worker counts {1, 4, num_cpus}. After the Criterion
//! groups run, the full matrix is re-measured and written to
//! `results/BENCH_exec.json` so the numbers land next to the figure
//! data (`fig_runner exec --json results` produces the same file).

use criterion::{criterion_group, BenchmarkId, Criterion};
use rcmp_bench::figures::execfig;
use rcmp_exec::{AsyncExecutor, ThreadedExecutor};
use std::io::Write;

fn bench_threaded(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_wave_threaded");
    g.sample_size(10);
    for tasks in execfig::task_counts() {
        let exec = ThreadedExecutor::new();
        g.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| execfig::time_wave(&exec, tasks, 0))
        });
    }
    g.finish();
}

fn bench_async(c: &mut Criterion) {
    for workers in execfig::worker_counts() {
        let mut g = c.benchmark_group(format!("exec_wave_async_w{workers}"));
        g.sample_size(10);
        for tasks in execfig::task_counts() {
            let exec = AsyncExecutor::new(workers);
            g.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
                b.iter(|| execfig::time_wave(&exec, tasks, 0))
            });
        }
        g.finish();
    }
}

criterion_group!(waves, bench_threaded, bench_async);

fn main() {
    waves();
    let bench = execfig::run();
    println!("{}", bench.render());
    // `cargo bench` runs with the package dir as CWD; anchor the output
    // in the workspace-level results/ next to the figure JSONs.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = serde_json::to_string_pretty(&serde_json::to_value(&bench).unwrap()).unwrap();
        match std::fs::File::create(format!("{dir}/BENCH_exec.json")) {
            Ok(mut f) => f.write_all(json.as_bytes()).expect("write BENCH_exec.json"),
            Err(e) => eprintln!("skipping BENCH_exec.json: {e}"),
        }
    }
}
