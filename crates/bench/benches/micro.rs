//! Micro-benchmarks of the hot building blocks: partitioning, record
//! codec, MD5, the persisted map-output store, recovery planning, and a
//! small end-to-end engine job.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcmp_core::strategy::HotspotMitigation;
use rcmp_core::{plan_recovery, JobGraph, SplitPolicy};
use rcmp_engine::{Cluster, JobRun, JobTracker, NoFailures};
use rcmp_model::hash::hash_bytes;
use rcmp_model::{
    ClusterConfig, HashPartitioner, NodeId, Record, RecordReader, RecordWriter, SplitPartitioner,
};
use rcmp_workloads::md5::md5;
use rcmp_workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn bench_partitioners(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    g.throughput(Throughput::Elements(10_000));
    let hp = HashPartitioner::new(60);
    g.bench_function("hash_partition_10k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in 0..10_000u64 {
                acc ^= hp.partition_of(std::hint::black_box(k)).raw();
            }
            acc
        })
    });
    let sp = SplitPartitioner::new(59);
    g.bench_function("split_partition_10k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in 0..10_000u64 {
                acc ^= sp.split_of(std::hint::black_box(k)).raw();
            }
            acc
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let records: Vec<Record> = (0..1000)
        .map(|i| Record::new(i, vec![i as u8; 100]))
        .collect();
    g.throughput(Throughput::Bytes(1000 * 112));
    g.bench_function("encode_1k_records", |b| {
        b.iter(|| {
            let mut w = RecordWriter::new();
            for r in &records {
                w.push(std::hint::black_box(r));
            }
            w.finish()
        })
    });
    let encoded = {
        let mut w = RecordWriter::new();
        for r in &records {
            w.push(r);
        }
        w.finish()
    };
    g.bench_function("decode_1k_records", |b| {
        b.iter(|| RecordReader::decode_all(std::hint::black_box(encoded.clone())).unwrap())
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    let data = vec![0xabu8; 64 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("md5_64k", |b| b.iter(|| md5(std::hint::black_box(&data))));
    g.bench_function("fingerprint_64k", |b| {
        b.iter(|| hash_bytes(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_engine_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("small_job_end_to_end", |b| {
        b.iter_with_setup(
            || {
                let cluster = Cluster::new(ClusterConfig::small_test(4));
                generate_input(cluster.dfs(), &DataGenConfig::test("input", 4, 20_000)).unwrap();
                cluster
            },
            |cluster| {
                let chain = ChainBuilder::new(1, 4).build();
                let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
                tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap()
            },
        )
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner");
    // Build a completed 5-job chain state, kill a node, then measure
    // planning time.
    let cluster = Cluster::new(ClusterConfig::small_test(6));
    generate_input(cluster.dfs(), &DataGenConfig::test("input", 6, 30_000)).unwrap();
    let chain = ChainBuilder::new(5, 6).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    for (i, spec) in chain.jobs.iter().enumerate() {
        tracker
            .run(&JobRun::full(spec.clone()), (i + 1) as u64)
            .unwrap();
    }
    cluster.fail_node(NodeId(2));
    let graph = JobGraph::new(chain.jobs.iter().cloned()).unwrap();
    g.bench_function("plan_recovery_5_job_chain", |b| {
        b.iter(|| {
            plan_recovery(
                &cluster,
                &graph,
                rcmp_model::JobId(5),
                SplitPolicy::Fixed(5),
                HotspotMitigation::SplitReducers,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_partitioners,
    bench_codec,
    bench_hashing,
    bench_engine_job,
    bench_planner
);
criterion_main!(benches);
