//! Micro-benchmarks for the shared wave-assignment kernel
//! (`rcmp-policy`) at DCO scale: 60 nodes and thousands of tasks, the
//! largest configuration the paper evaluates (Fig. 11). The kernel runs
//! once per job attempt on the scheduling hot path of both the engine
//! and the simulator, so its cost must stay negligible next to a wave
//! of real task work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcmp_policy::{
    assign_map_waves, assign_reduce_waves, FnMapTasks, FnReduceTasks, PolicyCtx, ReduceAssignment,
    SliceTopology,
};

const NODES: u32 = 60;

/// A DCO-like replica layout: task `t`'s primary holder is `t % NODES`,
/// with two more replicas on the following nodes (3-way replication).
fn holds(task: usize, node: u32) -> bool {
    let primary = (task as u32) % NODES;
    (node + NODES - primary) % NODES < 3
}

fn is_primary(task: usize, node: u32) -> bool {
    (task as u32) % NODES == node
}

fn bench_map_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_map_waves_dco");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    let live: Vec<u32> = (0..NODES).collect();
    // 1200 ≈ one 20 GB/node DCO job's mappers; 3600 ≈ three jobs deep.
    for tasks in [1200usize, 3600] {
        let topo = SliceTopology::uniform(&live, 2);
        g.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            let set = FnMapTasks::new(tasks, is_primary, holds);
            b.iter(|| {
                assign_map_waves(
                    std::hint::black_box(&topo),
                    std::hint::black_box(&set),
                    PolicyCtx::disabled(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_reduce_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_reduce_waves_dco");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    let live: Vec<u32> = (0..NODES).collect();
    for (name, style) in [
        ("round_robin", ReduceAssignment::RoundRobinByPartition),
        ("balance", ReduceAssignment::Balance),
    ] {
        for tasks in [1200usize, 4800] {
            let topo = SliceTopology::uniform(&live, 2);
            g.bench_with_input(BenchmarkId::new(name, tasks), &tasks, |b, &tasks| {
                let set = FnReduceTasks::new(tasks, |t| t);
                b.iter(|| {
                    assign_reduce_waves(
                        std::hint::black_box(&topo),
                        std::hint::black_box(&set),
                        style,
                        PolicyCtx::disabled(),
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_map_kernel, bench_reduce_kernel);
criterion_main!(benches);
