//! Criterion benches: one target per paper figure.
//!
//! Each bench runs the corresponding experiment harness at reduced
//! scale (`--quick` semantics) so `cargo bench` completes in minutes;
//! the `fig_runner` binary runs the same harnesses at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rcmp_bench::figures::*;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(8));

    g.bench_function("fig02_failure_cdf", |b| {
        b.iter(|| fig02::run(std::hint::black_box(42)))
    });
    g.bench_function("fig08a_no_failure", |b| {
        let scen = quick_scenarios();
        b.iter(|| fig08::run_with(fig08::FailCase::None, std::hint::black_box(&scen)))
    });
    g.bench_function("fig08b_fail_early", |b| {
        let scen = quick_scenarios();
        b.iter(|| fig08::run_with(fig08::FailCase::Early, std::hint::black_box(&scen)))
    });
    g.bench_function("fig08c_fail_late", |b| {
        let scen = quick_scenarios();
        b.iter(|| fig08::run_with(fig08::FailCase::Late, std::hint::black_box(&scen)))
    });
    g.bench_function("fig09_double_failures", |b| {
        b.iter(|| fig09::run_scaled(std::hint::black_box(8)))
    });
    g.bench_function("fig10_chain_length", |b| {
        b.iter(|| fig10::run_scaled(std::hint::black_box(8)))
    });
    g.bench_function("fig11_split_scaling", |b| {
        b.iter(|| fig11::run_scaled(std::hint::black_box(8)))
    });
    g.bench_function("fig12_hotspot_cdf", |b| {
        b.iter(|| fig12::run_scaled(std::hint::black_box(8)))
    });
    g.bench_function("fig13_reducer_waves", |b| {
        b.iter(|| fig13::run_scaled(std::hint::black_box(4)))
    });
    g.bench_function("fig14_mapper_waves", |b| {
        b.iter(|| fig14::run_scaled(std::hint::black_box(1)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
