//! Shuffle data-path benchmarks at DCO scale: the legacy sort-all
//! oracle vs the k-way streaming merge vs streaming over pre-combined
//! buckets, at 1200–4800 reduce tasks. After the Criterion groups run,
//! the full matrix is re-measured and written to
//! `results/BENCH_shuffle.json` (`fig_runner shuffle --json results`
//! produces the same file).

use criterion::{criterion_group, BenchmarkId, Criterion};
use rcmp_bench::figures::shufflefig;
use std::io::Write;

fn bench_paths(c: &mut Criterion) {
    // Criterion sampling at the 4800-task shape is minutes of wall
    // clock; the groups sample the smallest shape scaled down 4x and
    // leave the full matrix to the best-of run below.
    let scale = 4;
    let mut g = c.benchmark_group("shuffle_paths");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("quick-matrix"), |b| {
        b.iter(|| shufflefig::run_scaled(scale))
    });
    g.finish();
}

criterion_group!(paths, bench_paths);

fn main() {
    paths();
    let bench = shufflefig::run();
    println!("{}", bench.render());
    // `cargo bench` runs with the package dir as CWD; anchor the output
    // in the workspace-level results/ next to the figure JSONs.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = serde_json::to_string_pretty(&serde_json::to_value(&bench).unwrap()).unwrap();
        match std::fs::File::create(format!("{dir}/BENCH_shuffle.json")) {
            Ok(mut f) => f
                .write_all(json.as_bytes())
                .expect("write BENCH_shuffle.json"),
            Err(e) => eprintln!("skipping BENCH_shuffle.json: {e}"),
        }
    }
}
