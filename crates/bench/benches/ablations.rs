//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * split-ratio sweep — how the recomputation time responds to the
//!   split factor (the paper fixes 8/59; this shows the knee);
//! * persisted-output reuse on/off — the value of RCMP's across-job
//!   persistence in isolation;
//! * hot-spot mitigation comparison — splitting vs the rejected
//!   spread-output alternative vs nothing (§IV-B2);
//! * detection-timeout sensitivity — how the 30 s timeout contributes
//!   to total recovery cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcmp_core::Strategy;
use rcmp_model::SlotConfig;
use rcmp_sim::jobsim::RecomputeSpec;
use rcmp_sim::{
    simulate_chain, ChainSimConfig, FailureAt, HwProfile, JobSim, SimState, WorkloadCfg,
};

fn quick_wl() -> WorkloadCfg {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / 8;
    wl
}

/// Split-ratio sweep: recomputation duration for one lost partition.
fn ablation_split_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_split_ratio");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    let wl = quick_wl();
    let js = JobSim::new(HwProfile::stic(), wl.clone());
    let mut base = SimState::new(&wl);
    js.run_full(&mut base, 1, 1, true).unwrap();
    base.fail_node(wl.nodes - 1);
    let lost = base.files[&1].lost_partitions(&base);
    for split in [1u32, 2, 4, 8, 9] {
        g.bench_with_input(BenchmarkId::from_parameter(split), &split, |b, &split| {
            b.iter_with_setup(
                || base.clone(),
                |mut st| {
                    js.run_recompute(
                        &mut st,
                        1,
                        &RecomputeSpec::new(lost.iter().copied(), split),
                        true,
                    )
                },
            )
        });
    }
    g.finish();
}

/// Reuse on/off: the value of persisted map outputs.
fn ablation_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_map_output_reuse");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    let wl = quick_wl();
    let js = JobSim::new(HwProfile::stic(), wl.clone());
    let mut base = SimState::new(&wl);
    js.run_full(&mut base, 1, 1, true).unwrap();
    base.fail_node(wl.nodes - 1);
    let lost = base.files[&1].lost_partitions(&base);
    for (name, reuse) in [("reuse", true), ("no_reuse", false)] {
        g.bench_function(name, |b| {
            b.iter_with_setup(
                || base.clone(),
                |mut st| {
                    let mut spec = RecomputeSpec::new(lost.iter().copied(), 1);
                    spec.reuse_map_outputs = reuse;
                    js.run_recompute(&mut st, 1, &spec, true)
                },
            )
        });
    }
    g.finish();
}

/// Hot-spot mitigations under a late failure: none vs spread-output vs
/// splitting (§IV-B2's analysis).
fn ablation_hotspot_mitigation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hotspot_mitigation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    let wl = quick_wl();
    use rcmp_core::strategy::{HotspotMitigation, SplitPolicy};
    let variants: [(&str, Strategy); 3] = [
        ("none", Strategy::rcmp_no_split()),
        (
            "spread_output",
            Strategy::Rcmp {
                split: SplitPolicy::None,
                hotspot: HotspotMitigation::SpreadOutput,
            },
        ),
        ("split", Strategy::rcmp_split(8)),
    ];
    for (name, strategy) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = ChainSimConfig::new(HwProfile::stic(), wl.clone(), strategy)
                    .with_failures(vec![FailureAt::at_job(7, wl.nodes - 1)]);
                simulate_chain(std::hint::black_box(&cfg))
            })
        });
    }
    g.finish();
}

/// Detection-timeout sensitivity.
fn ablation_detect_timeout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_detect_timeout");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    let wl = quick_wl();
    for timeout in [10.0f64, 30.0, 90.0] {
        let mut hw = HwProfile::stic();
        hw.detect_timeout = timeout;
        g.bench_with_input(BenchmarkId::from_parameter(timeout as u64), &hw, |b, hw| {
            b.iter(|| {
                let cfg = ChainSimConfig::new(hw.clone(), wl.clone(), Strategy::rcmp_split(8))
                    .with_failures(vec![FailureAt::at_job(4, wl.nodes - 1)]);
                simulate_chain(std::hint::black_box(&cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_split_ratio,
    ablation_reuse,
    ablation_hotspot_mitigation,
    ablation_detect_timeout
);
criterion_main!(benches);
