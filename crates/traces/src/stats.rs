//! Summary statistics of a failure trace (the §III-A argument).

use crate::cdf::Cdf;
use serde::{Deserialize, Serialize};

/// Summary of a daily new-failure trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    pub days: usize,
    pub failure_days: usize,
    /// Fraction of days with ≥ 1 new failure.
    pub failure_day_fraction: f64,
    pub total_failures: u64,
    /// Mean failures per day (over all days).
    pub mean_per_day: f64,
    /// Mean time between failure days, in days — the paper's
    /// "at this moderate scale node failures are expected only at an
    /// interval of days".
    pub mean_days_between_failures: f64,
    pub max_in_one_day: u32,
}

impl TraceStats {
    pub fn from_trace(trace: &[u32]) -> Self {
        let days = trace.len();
        let failure_days = trace.iter().filter(|&&c| c > 0).count();
        let total: u64 = trace.iter().map(|&c| c as u64).sum();
        Self {
            days,
            failure_days,
            failure_day_fraction: if days == 0 {
                0.0
            } else {
                failure_days as f64 / days as f64
            },
            total_failures: total,
            mean_per_day: if days == 0 {
                0.0
            } else {
                total as f64 / days as f64
            },
            mean_days_between_failures: if failure_days == 0 {
                f64::INFINITY
            } else {
                days as f64 / failure_days as f64
            },
            max_in_one_day: trace.iter().copied().max().unwrap_or(0),
        }
    }

    /// The Fig.-2 CDF of the trace.
    pub fn cdf(trace: &[u32]) -> Cdf {
        Cdf::from_observations(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_known_trace() {
        let trace = [0, 0, 1, 0, 3, 0, 0, 0, 2, 0];
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.days, 10);
        assert_eq!(s.failure_days, 3);
        assert!((s.failure_day_fraction - 0.3).abs() < 1e-12);
        assert_eq!(s.total_failures, 6);
        assert!((s.mean_days_between_failures - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_in_one_day, 3);
    }

    #[test]
    fn empty_and_failure_free() {
        let s = TraceStats::from_trace(&[]);
        assert_eq!(s.days, 0);
        let s = TraceStats::from_trace(&[0, 0, 0]);
        assert_eq!(s.failure_days, 0);
        assert!(s.mean_days_between_failures.is_infinite());
    }

    #[test]
    fn synthesized_traces_support_the_papers_argument() {
        use crate::synth::{synthesize, TraceProfile};
        for p in [TraceProfile::stic(), TraceProfile::sugar()] {
            let s = TraceStats::from_trace(&synthesize(&p, 99));
            // Failures only every several days on average.
            assert!(
                s.mean_days_between_failures > 4.0,
                "{}: failures too frequent ({})",
                p.name,
                s.mean_days_between_failures
            );
        }
    }
}
