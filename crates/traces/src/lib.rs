//! Failure-trace synthesis and analysis (paper Fig. 2, §III-A).
//!
//! The paper analyzes machine-unavailability traces from two Rice
//! University clusters — STIC (218 nodes, Sept 2009 – Sept 2012) and
//! SUG@R (121 nodes, Jan 2009 – Sept 2012) — to argue that at moderate
//! cluster sizes failures are occasional, not ubiquitous: only 17%
//! (STIC) / 12% (SUG@R) of days see any new failure, most failure days
//! see one or two machines, and the rare heavy days (tens of nodes) are
//! scheduler/file-system outages rather than independent hardware
//! faults. The original trace link is dead, so [`synth`] generates
//! traces calibrated to those published summary statistics, and [`cdf`]
//! computes the Fig.-2 distribution from any trace.

pub mod cdf;
pub mod stats;
pub mod synth;

pub use cdf::Cdf;
pub use stats::TraceStats;
pub use synth::{synthesize, TraceProfile};
