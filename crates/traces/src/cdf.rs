//! Empirical CDFs (the Fig. 2 rendering).

use serde::{Deserialize, Serialize};

/// An empirical CDF over non-negative integer observations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted distinct values.
    values: Vec<u32>,
    /// `cum[i]` = fraction of observations ≤ `values[i]`.
    cum: Vec<f64>,
    n: usize,
}

impl Cdf {
    pub fn from_observations(obs: &[u32]) -> Self {
        let mut sorted = obs.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut values = Vec::new();
        let mut cum = Vec::new();
        let mut i = 0usize;
        while i < n {
            let v = sorted[i];
            let mut j = i;
            while j < n && sorted[j] == v {
                j += 1;
            }
            values.push(v);
            cum.push(j as f64 / n as f64);
            i = j;
        }
        Self { values, cum, n }
    }

    /// P(X ≤ x).
    pub fn at(&self, x: u32) -> f64 {
        match self.values.binary_search(&x) {
            Ok(i) => self.cum[i],
            Err(0) => 0.0,
            Err(i) => self.cum[i - 1],
        }
    }

    /// Smallest value with CDF ≥ q (q in (0, 1]).
    pub fn quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        for (v, c) in self.values.iter().zip(&self.cum) {
            if *c >= q {
                return *v;
            }
        }
        self.values.last().copied().unwrap_or(0)
    }

    /// `(value, cumulative_fraction)` points for plotting/printing.
    pub fn points(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.values.iter().copied().zip(self.cum.iter().copied())
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// CDF over f64 observations (mapper durations, Fig. 12).
#[derive(Clone, Debug, PartialEq)]
pub struct CdfF64 {
    sorted: Vec<f64>,
}

impl CdfF64 {
    pub fn from_observations(obs: &[f64]) -> Self {
        let mut sorted = obs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// P(X ≤ x).
    pub fn at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len().max(1) as f64
    }

    /// Value at quantile q (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_cdf_basics() {
        let c = Cdf::from_observations(&[0, 0, 0, 1, 2, 2, 5]);
        assert_eq!(c.len(), 7);
        assert!((c.at(0) - 3.0 / 7.0).abs() < 1e-12);
        assert!((c.at(1) - 4.0 / 7.0).abs() < 1e-12);
        assert!((c.at(4) - 6.0 / 7.0).abs() < 1e-12);
        assert!((c.at(5) - 1.0).abs() < 1e-12);
        assert_eq!(c.at(99), 1.0);
        assert_eq!(c.quantile(0.5), 1);
        assert_eq!(c.quantile(1.0), 5);
    }

    #[test]
    fn float_cdf_median() {
        let c = CdfF64::from_observations(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(c.median(), 3.0);
        assert!((c.at(3.5) - 0.6).abs() < 1e-9);
        assert_eq!(c.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_inputs() {
        let c = Cdf::from_observations(&[]);
        assert!(c.is_empty());
        assert_eq!(c.at(0), 0.0);
        let f = CdfF64::from_observations(&[]);
        assert_eq!(f.median(), 0.0);
    }

    #[test]
    fn points_are_monotone() {
        let c = Cdf::from_observations(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let pts: Vec<_> = c.points().collect();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }
}
