//! Synthetic failure-trace generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Statistical profile of a cluster's daily new-failure counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    pub name: String,
    /// Nodes in the cluster (caps burst sizes).
    pub nodes: u32,
    /// Days covered by the trace.
    pub days: u32,
    /// Probability that a day sees at least one new failure.
    pub p_failure_day: f64,
    /// Given a failure day, probability it is a burst (outage) day.
    pub p_burst: f64,
    /// Geometric parameter for ordinary failure days (mean ≈ 1/p).
    pub geo_p: f64,
    /// Burst-day size range (uniform), e.g. scheduler/FS outages taking
    /// out tens of machines.
    pub burst_range: (u32, u32),
}

impl TraceProfile {
    /// STIC-like: 218 nodes, ~3 years of daily checks, 17% failure days.
    pub fn stic() -> Self {
        Self {
            name: "STIC".into(),
            nodes: 218,
            days: 1096,
            p_failure_day: 0.17,
            p_burst: 0.04,
            geo_p: 0.65,
            burst_range: (8, 40),
        }
    }

    /// SUG@R-like: 121 nodes, ~3.7 years, 12% failure days.
    pub fn sugar() -> Self {
        Self {
            name: "SUG@R".into(),
            nodes: 121,
            days: 1370,
            p_failure_day: 0.12,
            p_burst: 0.03,
            geo_p: 0.7,
            burst_range: (5, 25),
        }
    }
}

/// Generates a daily new-failure-count series for the profile.
pub fn synthesize(profile: &TraceProfile, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7ace);
    (0..profile.days)
        .map(|_| {
            if rng.gen::<f64>() >= profile.p_failure_day {
                return 0;
            }
            if rng.gen::<f64>() < profile.p_burst {
                let (lo, hi) = profile.burst_range;
                rng.gen_range(lo..=hi).min(profile.nodes)
            } else {
                // Geometric, shifted to ≥ 1.
                let mut k = 1u32;
                while rng.gen::<f64>() > profile.geo_p && k < profile.nodes {
                    k += 1;
                }
                k
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = TraceProfile::stic();
        assert_eq!(synthesize(&p, 1), synthesize(&p, 1));
        assert_ne!(synthesize(&p, 1), synthesize(&p, 2));
    }

    #[test]
    fn matches_failure_day_fraction() {
        for (p, expect) in [(TraceProfile::stic(), 0.17), (TraceProfile::sugar(), 0.12)] {
            let trace = synthesize(&p, 42);
            let frac = trace.iter().filter(|&&c| c > 0).count() as f64 / trace.len() as f64;
            assert!(
                (frac - expect).abs() < 0.03,
                "{}: failure-day fraction {frac} vs target {expect}",
                p.name
            );
        }
    }

    #[test]
    fn most_failure_days_are_small() {
        let trace = synthesize(&TraceProfile::stic(), 7);
        let failure_days: Vec<u32> = trace.into_iter().filter(|&c| c > 0).collect();
        let small = failure_days.iter().filter(|&&c| c <= 3).count();
        assert!(
            small as f64 / failure_days.len() as f64 > 0.8,
            "most failure days lose at most a few nodes"
        );
        let max = failure_days.iter().max().copied().unwrap_or(0);
        assert!(max >= 8, "occasional burst days exist (got max {max})");
    }

    #[test]
    fn counts_bounded_by_cluster_size() {
        let mut p = TraceProfile::stic();
        p.nodes = 10;
        p.burst_range = (8, 40);
        let trace = synthesize(&p, 3);
        assert!(trace.iter().all(|&c| c <= 10));
    }
}
