//! A discrete cluster simulator for the RCMP evaluation.
//!
//! The paper's performance results (Figs. 8–14) come from two physical
//! clusters (STIC: 10 nodes / 40 GB, DCO: 60 nodes / 1.2 TB). Those
//! phenomena — replication write amplification, wave counts, shuffle
//! bottlenecks, recomputation under-utilization, disk hot-spots — are
//! all *resource contention* effects, so this crate models exactly the
//! resources involved and nothing else:
//!
//! * per-node **disk** bandwidth with a concurrency-dependent seek
//!   penalty (the hot-spot mechanism of §IV-B2);
//! * per-node **NIC** bandwidth and an oversubscribed fabric;
//! * mapper/reducer **slots** and wave scheduling identical in policy to
//!   the real engine (`rcmp-engine::scheduler`), so wave counts and
//!   transfer volumes can be validated against real engine runs;
//! * **placement** of input blocks, reducer output segments and
//!   persisted map outputs at task granularity, so node death computes
//!   exactly which partitions and map outputs are lost;
//! * the same **strategy** semantics as `rcmp-core` (RCMP with/without
//!   splitting, REPL-k, OPTIMISTIC, hybrid), including cascading
//!   recomputation with the fingerprint-reuse rule and failure-detection
//!   timeouts.
//!
//! Time advances per task phase from bandwidth shares; per-task
//! durations are recorded so distributions (the mapper-time CDF of
//! Fig. 12) fall out directly.

pub mod chainsim;
pub mod hw;
pub mod jobsim;
pub mod report;
pub mod sched;
pub mod speculate;
pub mod state;
pub mod trace;
pub mod workload;

pub use chainsim::{simulate_chain, ChainSimConfig, FailureAt};
pub use hw::HwProfile;
pub use jobsim::JobSim;
pub use report::{SimChainReport, SimEvent, SimJobReport};
pub use speculate::{SpeculationCfg, SpeculationStats};
pub use state::{SimChainCache, SimState};
pub use trace::chain_trace;
pub use workload::WorkloadCfg;
