//! Simulated workload description (the paper's chain, §V-A).

use rcmp_model::{ByteSize, SlotConfig};
use serde::{Deserialize, Serialize};

/// Parameters of a simulated multi-job chain on a cluster.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCfg {
    /// Number of nodes at chain start.
    pub nodes: u32,
    pub slots: SlotConfig,
    /// Jobs in the chain (7 in the paper).
    pub jobs: u32,
    /// Input bytes per node (4 GiB on STIC, 20 GiB on DCO).
    pub per_node_input: ByteSize,
    /// DFS block size (256 MiB in the paper).
    pub block_size: ByteSize,
    /// Reducers per job. The paper sets it so WR = 1 (one reducer wave):
    /// `nodes * reduce_slots`.
    pub num_reducers: u32,
    /// Shuffle bytes per input byte (paper ratio 1:1:1 → 1.0).
    pub map_ratio: f64,
    /// Output bytes per shuffle byte.
    pub reduce_ratio: f64,
    /// Replication factor of the external input (3 in the paper).
    pub input_replication: u32,
}

impl WorkloadCfg {
    /// STIC-like: 10 nodes × 4 GiB = 40 GiB, 256 MiB blocks → 16
    /// mappers/node.
    pub fn stic(slots: SlotConfig) -> Self {
        let nodes = 10;
        Self {
            nodes,
            slots,
            jobs: 7,
            per_node_input: ByteSize::gib(4),
            block_size: ByteSize::mib(256),
            num_reducers: nodes * slots.reduce,
            map_ratio: 1.0,
            reduce_ratio: 1.0,
            input_replication: 3,
        }
    }

    /// DCO-like: 60 nodes × 20 GiB = 1.2 TiB, ~80 mappers/node.
    pub fn dco() -> Self {
        let nodes = 60;
        let slots = SlotConfig::ONE_ONE;
        Self {
            nodes,
            slots,
            jobs: 7,
            per_node_input: ByteSize::gib(20),
            block_size: ByteSize::mib(256),
            num_reducers: nodes * slots.reduce,
            map_ratio: 1.0,
            reduce_ratio: 1.0,
            input_replication: 3,
        }
    }

    /// Total input bytes.
    pub fn total_input(&self) -> ByteSize {
        self.per_node_input * self.nodes as u64
    }

    /// Mappers per job (one per input block) at chain start.
    pub fn mappers_per_job(&self) -> u64 {
        self.per_node_input.blocks_of(self.block_size) * self.nodes as u64
    }

    /// Mapper waves in an initial run (WM in the paper's model).
    pub fn initial_map_waves(&self) -> u64 {
        let slots_total = (self.nodes * self.slots.map) as u64;
        self.mappers_per_job().div_ceil(slots_total)
    }

    /// Reducer waves in an initial run (WR).
    pub fn initial_reduce_waves(&self) -> u64 {
        let slots_total = (self.nodes * self.slots.reduce) as u64;
        (self.num_reducers as u64).div_ceil(slots_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let stic = WorkloadCfg::stic(SlotConfig::ONE_ONE);
        assert_eq!(stic.total_input(), ByteSize::gib(40));
        assert_eq!(stic.mappers_per_job(), 160); // 16 per node × 10
        assert_eq!(stic.initial_map_waves(), 16);
        assert_eq!(stic.initial_reduce_waves(), 1); // WR = 1 by default

        let dco = WorkloadCfg::dco();
        assert_eq!(dco.total_input(), ByteSize::gib(1200));
        assert_eq!(dco.mappers_per_job(), 80 * 60);
        assert_eq!(dco.initial_map_waves(), 80);
    }

    #[test]
    fn slots_two_two_halves_waves() {
        let s = WorkloadCfg::stic(SlotConfig::TWO_TWO);
        assert_eq!(s.initial_map_waves(), 8);
        assert_eq!(s.num_reducers, 20);
        assert_eq!(s.initial_reduce_waves(), 1);
    }
}
