//! Abstract cluster state: placement of everything that matters.
//!
//! The simulator tracks *where data lives* at task granularity — input
//! blocks, reducer-output segments, persisted map outputs — without the
//! bytes themselves. Node death then computes exactly which partitions
//! lost all replicas and which map outputs are gone, the same state
//! transitions the real `rcmp-dfs`/`rcmp-engine` pair performs.

use crate::workload::WorkloadCfg;
use rcmp_model::{Error, Result};
use rcmp_policy::Membership;
use std::collections::{BTreeMap, BTreeSet};

/// Node index (dense, 0-based).
pub type Node = u32;

/// File index: 0 is the external input, `j ≥ 1` is job `j`'s output.
pub type FileId = u32;

/// One writer's replicated contribution to a partition.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Nodes holding a replica of this segment's blocks.
    pub holders: Vec<Node>,
    pub bytes: u64,
}

impl Segment {
    /// First live holder, if any.
    pub fn live_holder(&self, state: &SimState) -> Option<Node> {
        self.holders.iter().copied().find(|&n| state.is_alive(n))
    }
}

/// One reducer-output partition.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SimPartition {
    pub segments: Vec<Segment>,
    /// Bumped whenever a regeneration changes block boundaries/contents
    /// (split regeneration, or shape change) — the simulator's stand-in
    /// for the engine's content fingerprints (Fig. 5 rule).
    pub version: u64,
}

impl SimPartition {
    pub fn bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    pub fn is_written(&self) -> bool {
        !self.segments.is_empty()
    }

    /// Lost = some segment has no live replica.
    pub fn is_lost(&self, state: &SimState) -> bool {
        self.is_written() && self.segments.iter().any(|s| s.live_holder(state).is_none())
    }
}

/// A partitioned file.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SimFile {
    pub partitions: Vec<SimPartition>,
}

impl SimFile {
    pub fn bytes(&self) -> u64 {
        self.partitions.iter().map(SimPartition::bytes).sum()
    }

    pub fn lost_partitions(&self, state: &SimState) -> BTreeSet<u32> {
        self.partitions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_lost(state))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Mirror of the engine's `rcmp_dfs::ChainCache` at placement
/// granularity: which node holds which `(file, partition)` in memory,
/// under the same byte budget, commit order (ascending partition id)
/// and LRU-with-pin eviction — so cache-on schedules and hit accounting
/// agree between the simulator and the real engine. The simulator never
/// holds bytes, so "spill" is the same pure bookkeeping drop it is in
/// the engine (the DFS write-behind already persisted everything).
#[derive(Clone, Debug, Default)]
pub struct SimChainCache {
    /// Byte budget; staged partitions above it are spilled at commit.
    pub budget: u64,
    /// (file, pid) → (holder, bytes, admission seq).
    entries: BTreeMap<(FileId, u32), (Node, u64, u64)>,
    /// Per-file staged outputs awaiting the run's commit.
    staged: BTreeMap<FileId, BTreeMap<u32, (Node, u64)>>,
    used: u64,
    seq: u64,
    /// Partitions dropped (never admitted or evicted) for budget.
    pub spills: u64,
}

impl SimChainCache {
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }

    /// Node holding this partition in memory, if cached.
    pub fn holder(&self, file: FileId, pid: u32) -> Option<Node> {
        self.entries.get(&(file, pid)).map(|&(n, _, _)| n)
    }

    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Stages one reducer's whole-partition output for the running job.
    pub fn stage(&mut self, file: FileId, pid: u32, holder: Node, bytes: u64) {
        self.staged.entry(file).or_default().insert(pid, (holder, bytes));
    }

    /// Admits the staged partitions of `file` in ascending partition
    /// order, evicting least-recently-admitted unpinned entries on
    /// pressure. `pinned` (the consuming run's input file) is never
    /// evicted. A partition larger than what pressure can free is
    /// spilled, not admitted.
    pub fn commit(&mut self, file: FileId, pinned: Option<FileId>) {
        let Some(staged) = self.staged.remove(&file) else {
            return;
        };
        for (pid, (holder, bytes)) in staged {
            if let Some((_, b, _)) = self.entries.remove(&(file, pid)) {
                self.used -= b;
            }
            if bytes > self.budget {
                self.spills += 1;
                continue;
            }
            while self.used + bytes > self.budget {
                let victim = self
                    .entries
                    .iter()
                    .filter(|(&(f, _), _)| Some(f) != pinned)
                    .min_by_key(|(_, &(_, _, s))| s)
                    .map(|(&k, _)| k);
                match victim {
                    Some(k) => {
                        let (_, b, _) = self.entries.remove(&k).expect("victim exists");
                        self.used -= b;
                    }
                    None => break,
                }
            }
            if self.used + bytes > self.budget {
                self.spills += 1;
                continue;
            }
            self.seq += 1;
            self.entries.insert((file, pid), (holder, bytes, self.seq));
            self.used += bytes;
        }
    }

    pub fn invalidate_partition(&mut self, file: FileId, pid: u32) {
        if let Some((_, b, _)) = self.entries.remove(&(file, pid)) {
            self.used -= b;
        }
        if let Some(s) = self.staged.get_mut(&file) {
            s.remove(&pid);
        }
    }

    pub fn invalidate_file(&mut self, file: FileId) {
        let keys: Vec<_> = self
            .entries
            .range((file, 0)..(file + 1, 0))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let (_, b, _) = self.entries.remove(&k).expect("listed key");
            self.used -= b;
        }
        self.staged.remove(&file);
    }

    pub fn invalidate_node(&mut self, node: Node) {
        let keys: Vec<_> = self
            .entries
            .iter()
            .filter(|(_, &(n, _, _))| n == node)
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let (_, b, _) = self.entries.remove(&k).expect("listed key");
            self.used -= b;
        }
        for s in self.staged.values_mut() {
            s.retain(|_, &mut (n, _)| n != node);
        }
    }
}

/// A persisted map output: where it lives and which input version it
/// was computed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapOutputRec {
    pub node: Node,
    pub input_version: u64,
    pub bytes: u64,
}

/// Key of a map output: (consuming job, input partition, block index).
pub type MapKey = (u32, u32, u32);

/// The simulated cluster state.
#[derive(Clone, Debug, Default)]
pub struct SimState {
    /// Versioned membership — the same `rcmp-policy` model the engine's
    /// `Cluster` keeps, so epoch numbers and live sets agree across
    /// backends. Readable (Up | Draining) nodes serve data; schedulable
    /// (Up) nodes take tasks and new replicas.
    membership: Membership,
    /// file id → file.
    pub files: BTreeMap<FileId, SimFile>,
    /// Persisted map outputs.
    pub map_outputs: BTreeMap<MapKey, MapOutputRec>,
    /// Inter-job chain cache mirror (None = cache off, the default).
    pub chain_cache: Option<SimChainCache>,
}

impl SimState {
    /// Fresh state: all nodes alive, external input (file 0) written as
    /// one partition per node. Like HDFS, the first replica of each
    /// block is writer-local and the remaining replicas scatter
    /// pseudo-randomly across the cluster *per block* — so when a node
    /// dies, re-reads of its primary blocks spread over many surviving
    /// disks instead of piling onto a couple of neighbours.
    pub fn new(wl: &WorkloadCfg) -> Self {
        let n = wl.nodes;
        let block = wl.block_size.as_u64();
        let mut input = SimFile::default();
        for p in 0..n {
            let bytes = wl.per_node_input.as_u64();
            let num_blocks = bytes.div_ceil(block).max(1);
            let per = bytes / num_blocks;
            let mut segments = Vec::with_capacity(num_blocks as usize);
            for b in 0..num_blocks {
                let mut holders: Vec<Node> = vec![p];
                // Deterministic per-block scatter for the remote copies.
                let mut h = rcmp_model::partition::mix64(((p as u64) << 32) | b);
                while holders.len() < wl.input_replication.min(n) as usize {
                    let cand = (h % n as u64) as Node;
                    if !holders.contains(&cand) {
                        holders.push(cand);
                    }
                    h = rcmp_model::partition::mix64(h);
                }
                let sz = if b == num_blocks - 1 {
                    bytes - per * (num_blocks - 1)
                } else {
                    per
                };
                segments.push(Segment { holders, bytes: sz });
            }
            input.partitions.push(SimPartition {
                segments,
                version: 0,
            });
        }
        let mut files = BTreeMap::new();
        files.insert(0, input);
        Self {
            membership: Membership::uniform(n),
            files,
            map_outputs: BTreeMap::new(),
            chain_cache: None,
        }
    }

    /// Turns on the chain-cache mirror with the given byte budget.
    pub fn enable_chain_cache(&mut self, budget: u64) {
        self.chain_cache = Some(SimChainCache::new(budget));
    }

    /// Node holding `(file, pid)` in cache memory, if the cache is on.
    pub fn cache_holder(&self, file: FileId, pid: u32) -> Option<Node> {
        self.chain_cache.as_ref().and_then(|c| c.holder(file, pid))
    }

    /// Current membership snapshot (statuses, capacities, racks, epoch).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Replaces the membership wholesale — for heterogeneous or racked
    /// simulations built before any data movement happened. The new
    /// view must cover every node that holds data.
    pub fn set_membership(&mut self, membership: Membership) {
        assert!(
            membership.len() >= self.membership.len(),
            "membership must cover all {} existing nodes",
            self.membership.len()
        );
        self.membership = membership;
    }

    /// True while the node's data remains readable (Up | Draining).
    pub fn is_alive(&self, node: Node) -> bool {
        self.membership.is_readable(node)
    }

    /// Nodes that take new tasks and replicas (Up only): a draining
    /// node keeps serving its data but schedules nothing new — the same
    /// split the engine's `Cluster::schedulable_nodes` makes.
    pub fn live_nodes(&self) -> Vec<Node> {
        self.membership.schedulable()
    }

    /// Kills a node: its map outputs vanish; partitions report lost via
    /// `lost_partitions`. Returns files that newly lost partitions.
    pub fn fail_node(&mut self, node: Node) -> BTreeMap<FileId, BTreeSet<u32>> {
        let before: BTreeMap<FileId, BTreeSet<u32>> = self
            .files
            .iter()
            .map(|(&f, file)| (f, file.lost_partitions(self)))
            .collect();
        let _ = self.membership.mark_dead(node);
        self.map_outputs.retain(|_, rec| rec.node != node);
        if let Some(c) = self.chain_cache.as_mut() {
            c.invalidate_node(node);
        }
        let mut newly = BTreeMap::new();
        for (&f, file) in &self.files {
            let now = file.lost_partitions(self);
            let fresh: BTreeSet<u32> = now
                .difference(before.get(&f).unwrap_or(&BTreeSet::new()))
                .copied()
                .collect();
            if !fresh.is_empty() {
                newly.insert(f, fresh);
            }
        }
        newly
    }

    /// Adds a fresh empty node (Up) and returns its index. It becomes a
    /// placement target immediately; it holds no data yet.
    pub fn join_node(&mut self, capacity: u32, rack: u32) -> Node {
        self.membership.join(capacity, rack)
    }

    /// Starts draining a node: no new tasks or replicas land on it, but
    /// every replica it holds keeps serving (nothing is lost).
    pub fn drain_node(&mut self, node: Node) -> Result<()> {
        self.membership.drain(node)?;
        // Mirror the engine: a draining node's memory is surrendered
        // even though its disk replicas keep serving.
        if let Some(c) = self.chain_cache.as_mut() {
            c.invalidate_node(node);
        }
        Ok(())
    }

    /// Brings a drained or decommissioned node back as a schedulable
    /// target (a decommissioned node rejoins empty).
    pub fn rejoin_node(&mut self, node: Node) -> Result<()> {
        self.membership.rejoin(node)
    }

    /// Gracefully removes a node: every segment replica it holds is
    /// re-homed onto the first schedulable node not already holding the
    /// segment (the sim mirror of `rcmp-dfs`'s plan/copy/commit
    /// rebalance), its map outputs are dropped, and it leaves the
    /// membership `Decommissioned`. Returns `(moved, dropped)` replica
    /// counts; a replica is dropped in place when every target already
    /// holds the segment. Fails with
    /// [`Error::InsufficientReplicaTargets`] — leaving all state
    /// unchanged — when a sole-replica segment has nowhere to go.
    pub fn decommission_node(&mut self, node: Node) -> Result<(usize, usize)> {
        if !self.membership.is_readable(node) {
            // Surface the membership's own typed transition error.
            self.membership.decommission(node)?;
            unreachable!("decommission of a non-readable node must fail");
        }
        let pool: Vec<Node> = self
            .membership
            .schedulable()
            .into_iter()
            .filter(|&n| n != node)
            .collect();
        // Plan: (file, pid, seg) → Some(target) moves the replica,
        // None drops it in place (other readable holders remain).
        let mut plan: Vec<(FileId, usize, usize, Option<Node>)> = Vec::new();
        for (&f, file) in &self.files {
            for (pid, p) in file.partitions.iter().enumerate() {
                for (si, seg) in p.segments.iter().enumerate() {
                    if !seg.holders.contains(&node) {
                        continue;
                    }
                    let others_readable = seg
                        .holders
                        .iter()
                        .any(|&h| h != node && self.membership.is_readable(h));
                    match pool.iter().copied().find(|t| !seg.holders.contains(t)) {
                        Some(t) => plan.push((f, pid, si, Some(t))),
                        None if others_readable => plan.push((f, pid, si, None)),
                        None => {
                            return Err(Error::InsufficientReplicaTargets {
                                wanted: 1,
                                alive: pool.len(),
                            });
                        }
                    }
                }
            }
        }
        // Commit: contents are byte-identical on the new holder, so no
        // version bump — downstream lineage (map-output validity) is
        // preserved, exactly like the engine's verified copies.
        let (mut moved, mut dropped) = (0usize, 0usize);
        for (f, pid, si, target) in plan {
            let seg = &mut self
                .files
                .get_mut(&f)
                .expect("planned file exists")
                .partitions[pid]
                .segments[si];
            seg.holders.retain(|&h| h != node);
            match target {
                Some(t) => {
                    seg.holders.push(t);
                    moved += 1;
                }
                None => dropped += 1,
            }
        }
        self.map_outputs.retain(|_, rec| rec.node != node);
        if let Some(c) = self.chain_cache.as_mut() {
            c.invalidate_node(node);
        }
        self.membership
            .decommission(node)
            .expect("validated readable above");
        Ok((moved, dropped))
    }

    /// Blocks of one partition: `(block_bytes, holders)` per block, in
    /// segment order, given the DFS block size.
    pub fn partition_blocks(
        &self,
        file: FileId,
        pid: u32,
        block_size: u64,
    ) -> Vec<(u64, Vec<Node>)> {
        let Some(f) = self.files.get(&file) else {
            return Vec::new();
        };
        let Some(p) = f.partitions.get(pid as usize) else {
            return Vec::new();
        };
        let mut blocks = Vec::new();
        for seg in &p.segments {
            if seg.bytes == 0 {
                continue;
            }
            let n = seg.bytes.div_ceil(block_size).max(1);
            let per = seg.bytes / n;
            for i in 0..n {
                let b = if i == n - 1 {
                    seg.bytes - per * (n - 1)
                } else {
                    per
                };
                blocks.push((b, seg.holders.clone()));
            }
        }
        blocks
    }

    /// All blocks of a file: `(pid, block_idx, bytes, holders)`.
    pub fn file_blocks(&self, file: FileId, block_size: u64) -> Vec<(u32, u32, u64, Vec<Node>)> {
        let Some(f) = self.files.get(&file) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for pid in 0..f.partitions.len() as u32 {
            for (i, (bytes, holders)) in self
                .partition_blocks(file, pid, block_size)
                .into_iter()
                .enumerate()
            {
                out.push((pid, i as u32, bytes, holders));
            }
        }
        out
    }

    /// Current version of a partition (0 for unwritten).
    pub fn partition_version(&self, file: FileId, pid: u32) -> u64 {
        self.files
            .get(&file)
            .and_then(|f| f.partitions.get(pid as usize))
            .map(|p| p.version)
            .unwrap_or(0)
    }

    /// Replaces a partition's contents with new segments, bumping the
    /// version when block boundaries change: regeneration by `k > 1`
    /// splits always bumps; unsplit regeneration bumps only if the
    /// previous shape was not a single segment (the deterministic-
    /// regeneration fingerprint rule of the real engine).
    pub fn rewrite_partition(&mut self, file: FileId, pid: u32, segments: Vec<Segment>) {
        // The partition's bytes are about to change: a cached copy of
        // the old version must not serve (the engine's hash guard +
        // clear_partition hook, collapsed into one invalidation here).
        if let Some(c) = self.chain_cache.as_mut() {
            c.invalidate_partition(file, pid);
        }
        let f = self.files.entry(file).or_default();
        if f.partitions.len() <= pid as usize {
            f.partitions
                .resize(pid as usize + 1, SimPartition::default());
        }
        let p = &mut f.partitions[pid as usize];
        let shape_preserved = p.segments.len() == 1 && segments.len() == 1 && p.is_written();
        if !shape_preserved {
            p.version += 1;
        }
        p.segments = segments;
    }

    /// Records a mapper's persisted output.
    pub fn record_map_output(&mut self, key: MapKey, rec: MapOutputRec) {
        self.map_outputs.insert(key, rec);
    }

    /// Is the persisted output for this mapper valid today?
    pub fn map_output_valid(&self, key: MapKey, current_version: u64) -> bool {
        self.map_outputs
            .get(&key)
            .is_some_and(|r| self.is_alive(r.node) && r.input_version == current_version)
    }

    /// Drops all map outputs of one consuming job (Hadoop-mode cleanup /
    /// hybrid reclamation).
    pub fn clear_job_outputs(&mut self, job: u32) {
        self.map_outputs.retain(|k, _| k.0 != job);
    }

    /// Total bytes of persisted map outputs (storage accounting).
    pub fn persisted_bytes(&self) -> u64 {
        self.map_outputs.values().map(|r| r.bytes).sum()
    }

    /// Adds replicas to every segment of a file up to `factor` holders
    /// (hybrid replication points).
    pub fn replicate_file(&mut self, file: FileId, factor: u32) {
        let live = self.live_nodes();
        if live.is_empty() {
            return;
        }
        if let Some(f) = self.files.get_mut(&file) {
            for p in &mut f.partitions {
                for seg in &mut p.segments {
                    let mut i = 0usize;
                    while seg.holders.len() < factor as usize && i < live.len() {
                        let cand = live[i];
                        if !seg.holders.contains(&cand) {
                            seg.holders.push(cand);
                        }
                        i += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::SlotConfig;

    fn wl() -> WorkloadCfg {
        let mut w = WorkloadCfg::stic(SlotConfig::ONE_ONE);
        w.nodes = 4;
        w.num_reducers = 4;
        w
    }

    #[test]
    fn initial_input_is_replicated() {
        let s = SimState::new(&wl());
        let f = &s.files[&0];
        assert_eq!(f.partitions.len(), 4);
        for p in &f.partitions {
            assert_eq!(p.segments[0].holders.len(), 3);
        }
        assert!(f.lost_partitions(&s).is_empty());
    }

    #[test]
    fn triple_replication_survives_two_failures() {
        let mut s = SimState::new(&wl());
        assert!(s.fail_node(0).is_empty());
        assert!(s.fail_node(1).is_empty());
        // Third failure kills partitions replicated on {0,1,2} etc.
        let lost = s.fail_node(2);
        assert!(!lost.is_empty());
    }

    #[test]
    fn single_replica_partition_lost_with_node() {
        let mut s = SimState::new(&wl());
        s.rewrite_partition(
            1,
            0,
            vec![Segment {
                holders: vec![2],
                bytes: 100,
            }],
        );
        let lost = s.fail_node(2);
        assert_eq!(lost[&1], [0u32].into_iter().collect::<BTreeSet<_>>());
        assert!(s.files[&1].partitions[0].is_lost(&s));
    }

    #[test]
    fn version_rules_mirror_fingerprints() {
        let mut s = SimState::new(&wl());
        let seg1 = |n: Node| Segment {
            holders: vec![n],
            bytes: 100,
        };
        s.rewrite_partition(1, 0, vec![seg1(0)]);
        let v0 = s.partition_version(1, 0);
        // Unsplit → unsplit regeneration: byte-identical, same version.
        s.rewrite_partition(1, 0, vec![seg1(1)]);
        assert_eq!(s.partition_version(1, 0), v0);
        // Split regeneration: version bumps (Fig. 5).
        s.rewrite_partition(1, 0, vec![seg1(1), seg1(2)]);
        let v1 = s.partition_version(1, 0);
        assert!(v1 > v0);
        // Back to unsplit from split shape: boundaries change → bump.
        s.rewrite_partition(1, 0, vec![seg1(3)]);
        assert!(s.partition_version(1, 0) > v1);
    }

    #[test]
    fn map_output_validity() {
        let mut s = SimState::new(&wl());
        s.record_map_output(
            (2, 0, 0),
            MapOutputRec {
                node: 1,
                input_version: 5,
                bytes: 10,
            },
        );
        assert!(s.map_output_valid((2, 0, 0), 5));
        assert!(!s.map_output_valid((2, 0, 0), 6), "stale version");
        assert!(!s.map_output_valid((2, 0, 1), 5), "missing entry");
        s.fail_node(1);
        assert!(!s.map_output_valid((2, 0, 0), 5), "node dead");
    }

    #[test]
    fn partition_blocks_split_by_block_size() {
        let mut s = SimState::new(&wl());
        s.rewrite_partition(
            1,
            0,
            vec![Segment {
                holders: vec![0],
                bytes: 250,
            }],
        );
        let blocks = s.partition_blocks(1, 0, 100);
        assert_eq!(blocks.len(), 3);
        let total: u64 = blocks.iter().map(|(b, _)| b).sum();
        assert_eq!(total, 250);
    }

    #[test]
    fn replicate_file_adds_holders() {
        let mut s = SimState::new(&wl());
        s.rewrite_partition(
            1,
            0,
            vec![Segment {
                holders: vec![0],
                bytes: 100,
            }],
        );
        s.replicate_file(1, 2);
        assert_eq!(s.files[&1].partitions[0].segments[0].holders.len(), 2);
        // Now survives the original holder's death.
        let lost = s.fail_node(0);
        assert!(lost.is_empty());
    }

    #[test]
    fn clear_job_outputs_scoped() {
        let mut s = SimState::new(&wl());
        let rec = MapOutputRec {
            node: 0,
            input_version: 0,
            bytes: 7,
        };
        s.record_map_output((1, 0, 0), rec);
        s.record_map_output((2, 0, 0), rec);
        s.clear_job_outputs(1);
        assert!(!s.map_output_valid((1, 0, 0), 0));
        assert!(s.map_output_valid((2, 0, 0), 0));
        assert_eq!(s.persisted_bytes(), 7);
    }

    #[test]
    fn drained_node_serves_but_takes_no_new_placements() {
        let mut s = SimState::new(&wl());
        let e0 = s.membership().epoch();
        s.drain_node(2).unwrap();
        assert!(s.membership().epoch() > e0);
        assert!(s.is_alive(2), "draining data stays readable");
        assert!(!s.live_nodes().contains(&2), "no longer schedulable");
        assert!(s.files[&0].lost_partitions(&s).is_empty(), "nothing lost");
        s.rejoin_node(2).unwrap();
        assert!(s.live_nodes().contains(&2));
    }

    #[test]
    fn decommission_rehomes_replicas_and_drops_its_outputs() {
        let mut s = SimState::new(&wl());
        let rec = |node| MapOutputRec {
            node,
            input_version: 0,
            bytes: 5,
        };
        s.record_map_output((1, 0, 0), rec(2));
        s.record_map_output((1, 0, 1), rec(0));
        let (moved, dropped) = s.decommission_node(2).unwrap();
        assert!(moved > 0);
        assert_eq!(dropped, 0);
        assert!(!s.is_alive(2));
        assert!(s.files[&0].lost_partitions(&s).is_empty(), "no data lost");
        for p in &s.files[&0].partitions {
            for seg in &p.segments {
                assert!(!seg.holders.contains(&2), "replicas re-homed");
                assert_eq!(seg.holders.len(), 3, "replication factor kept");
            }
        }
        assert!(!s.map_output_valid((1, 0, 0), 0), "leaver's outputs gone");
        assert!(s.map_output_valid((1, 0, 1), 0), "survivors untouched");
    }

    #[test]
    fn decommission_sole_replica_without_target_fails_clean() {
        let mut s = SimState::new(&wl());
        s.fail_node(0);
        s.fail_node(1);
        s.fail_node(3);
        let epoch = s.membership().epoch();
        let err = s.decommission_node(2).unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicaTargets { .. }));
        assert_eq!(s.membership().epoch(), epoch, "state unchanged");
        assert!(s.is_alive(2), "node 2 still serving");
    }

    #[test]
    fn join_grows_the_placement_pool() {
        let mut s = SimState::new(&wl());
        let n = s.join_node(2, 1);
        assert_eq!(n, 4);
        assert!(s.live_nodes().contains(&4));
        s.rewrite_partition(
            1,
            0,
            vec![Segment {
                holders: vec![0],
                bytes: 100,
            }],
        );
        s.replicate_file(1, 5);
        assert!(
            s.files[&1].partitions[0].segments[0].holders.contains(&4),
            "new node absorbs replicas"
        );
    }
}
