//! Simulation reports.

use crate::speculate::SpeculationStats;
use rcmp_obs::{PhaseBreakdown, PhaseKind};
use serde::{Deserialize, Serialize};

/// Simulated seconds → profiler microseconds.
fn secs_to_us(s: f64) -> u64 {
    (s * 1e6).round() as u64
}

/// Byte volumes of one simulated job run (mirrors the engine's
/// `IoBytes`, validated against it on matched configurations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimIo {
    pub map_input_local: u64,
    pub map_input_remote: u64,
    pub shuffle_local: u64,
    pub shuffle_remote: u64,
    pub output_written: u64,
    pub replication_written: u64,
}

impl SimIo {
    pub fn add(&mut self, o: &SimIo) {
        self.map_input_local += o.map_input_local;
        self.map_input_remote += o.map_input_remote;
        self.shuffle_local += o.shuffle_local;
        self.shuffle_remote += o.shuffle_remote;
        self.output_written += o.output_written;
        self.replication_written += o.replication_written;
    }
}

/// Outcome of one simulated job run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimJobReport {
    /// Logical job (1-based position in the chain).
    pub job: u32,
    /// Global run sequence number.
    pub seq: u64,
    /// Simulated wall-clock duration, seconds.
    pub duration: f64,
    pub map_waves: u32,
    pub reduce_waves: u32,
    pub mappers_run: usize,
    pub mappers_reused: usize,
    pub reduce_tasks_run: usize,
    /// Per-mapper durations (seconds) — the Fig. 12 CDF data.
    pub mapper_durations: Vec<f64>,
    /// Per-reduce-task durations (seconds).
    pub reducer_durations: Vec<f64>,
    pub io: SimIo,
    /// Chain-cache hits (map inputs served from memory), total and
    /// node-local; zero when the cache is off. Mirrors the engine's
    /// `cache.hits` / `cache.hits_local` counters.
    #[serde(default)]
    pub cache_hits: u64,
    #[serde(default)]
    pub cache_hits_local: u64,
    /// Bytes served out of the chain cache instead of the DFS.
    #[serde(default)]
    pub cache_read_bytes: u64,
    /// True for recomputation runs.
    pub recompute: bool,
    /// Speculative-execution statistics (zero unless enabled).
    #[serde(default)]
    pub speculation: SpeculationStats,
}

/// Timeline entry of the chain simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    JobCompleted { seq: u64, job: u32, at: f64 },
    FailureInjected { at: f64, node: u32 },
    FailureDetected { at: f64, node: u32 },
    RecoveryPlanned { steps: usize, partitions: usize },
    ChainRestarted { at: f64 },
    ReplicationPoint { job: u32, at: f64 },
}

/// Outcome of one simulated chain execution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimChainReport {
    /// Total simulated time, seconds.
    pub total_time: f64,
    pub runs: Vec<SimJobReport>,
    pub events: Vec<SimEvent>,
    pub jobs_started: u64,
    /// Simulated time spent in seeded retry backoff (modelled from
    /// `rcmp_model::RetryPolicy`, mirroring the engine's delays).
    #[serde(default)]
    pub backoff_secs: f64,
    /// The adaptive policy's decision after each completed chain job
    /// (empty unless the strategy is `AdaptiveHybrid`).
    #[serde(default)]
    pub adaptation: Vec<rcmp_policy::AdaptationStep>,
}

impl SimChainReport {
    /// Job runs that were recomputations.
    pub fn recompute_runs(&self) -> impl Iterator<Item = &SimJobReport> {
        self.runs.iter().filter(|r| r.recompute)
    }

    /// Projects the simulated chain onto the engine's 14-phase
    /// time-budget schema: the returned [`PhaseBreakdown`] has the same
    /// rows in the same order as the engine profiler's snapshot, so
    /// engine and simulator figures render and diff through one code
    /// path. Phases the simulator does not model (reactor poll/park,
    /// block verify, DFS byte I/O timing) stay at zero — visible,
    /// rather than silently absent from the schema.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let (mut map_us, mut map_n) = (0u64, 0u64);
        let (mut reduce_us, mut reduce_n) = (0u64, 0u64);
        let (mut rc_us, mut rc_n) = (0u64, 0u64);
        for run in &self.runs {
            map_n += run.mapper_durations.len() as u64;
            map_us += run
                .mapper_durations
                .iter()
                .map(|&d| secs_to_us(d))
                .sum::<u64>();
            reduce_n += run.reducer_durations.len() as u64;
            reduce_us += run
                .reducer_durations
                .iter()
                .map(|&d| secs_to_us(d))
                .sum::<u64>();
            if run.recompute {
                rc_us += secs_to_us(run.duration);
                rc_n += u64::from(run.map_waves + run.reduce_waves);
            }
        }
        let planned = self
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::RecoveryPlanned { .. }))
            .count() as u64;
        PhaseBreakdown::from_parts(&[
            (PhaseKind::MapCompute, map_us, map_n),
            (PhaseKind::ReduceUdf, reduce_us, reduce_n),
            (PhaseKind::RecomputeWave, rc_us, rc_n),
            (
                PhaseKind::RetryBackoff,
                secs_to_us(self.backoff_secs),
                u64::from(self.backoff_secs > 0.0),
            ),
            // Simulated planning is instantaneous; the count still
            // records how many plans were drawn up.
            (PhaseKind::RecoveryPlanning, 0, planned),
        ])
    }

    /// Average duration of the initial (non-recompute) runs of jobs that
    /// completed before any failure — the per-job baseline used by the
    /// paper's numerical analysis (Fig. 10).
    pub fn mean_initial_job_time(&self) -> f64 {
        let initial: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| !r.recompute)
            .map(|r| r.duration)
            .collect();
        if initial.is_empty() {
            0.0
        } else {
            initial.iter().sum::<f64>() / initial.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_aggregation() {
        let mut a = SimIo {
            map_input_local: 1,
            shuffle_remote: 2,
            ..Default::default()
        };
        a.add(&SimIo {
            map_input_local: 3,
            output_written: 4,
            ..Default::default()
        });
        assert_eq!(a.map_input_local, 4);
        assert_eq!(a.output_written, 4);
    }

    #[test]
    fn mean_initial_time_ignores_recomputes() {
        let mut r = SimChainReport::default();
        r.runs.push(SimJobReport {
            duration: 10.0,
            ..Default::default()
        });
        r.runs.push(SimJobReport {
            duration: 99.0,
            recompute: true,
            ..Default::default()
        });
        r.runs.push(SimJobReport {
            duration: 20.0,
            ..Default::default()
        });
        assert!((r.mean_initial_job_time() - 15.0).abs() < 1e-9);
        assert_eq!(r.recompute_runs().count(), 1);
    }

    #[test]
    fn phase_breakdown_matches_engine_schema() {
        let mut r = SimChainReport::default();
        r.runs.push(SimJobReport {
            duration: 2.0,
            map_waves: 1,
            reduce_waves: 1,
            mapper_durations: vec![0.5, 0.5],
            reducer_durations: vec![1.0],
            ..Default::default()
        });
        r.runs.push(SimJobReport {
            duration: 3.0,
            map_waves: 1,
            reduce_waves: 1,
            mapper_durations: vec![1.5],
            recompute: true,
            ..Default::default()
        });
        r.backoff_secs = 0.25;
        r.events.push(SimEvent::RecoveryPlanned {
            steps: 1,
            partitions: 4,
        });

        let b = r.phase_breakdown();
        // Same rows, same order as an engine profiler snapshot.
        let engine_schema: Vec<&str> = PhaseKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(b.schema(), engine_schema);
        assert_eq!(b.total_us(PhaseKind::MapCompute), 2_500_000);
        assert_eq!(b.total_us(PhaseKind::ReduceUdf), 1_000_000);
        assert_eq!(b.total_us(PhaseKind::RecomputeWave), 3_000_000);
        assert_eq!(b.total_us(PhaseKind::RetryBackoff), 250_000);
        assert_eq!(b.entries[PhaseKind::RecoveryPlanning.index()].count, 1);
        assert_eq!(b.total_us(PhaseKind::ReactorPoll), 0);
    }
}
