//! Simulates a whole multi-job chain under a failure-resilience
//! strategy, with wall-clock failure injection.
//!
//! Mirrors the `rcmp-core` middleware's control flow in simulated time:
//! the same cascading-recomputation planning (against the sim state's
//! placement and map-output validity), the same cancellation semantics
//! (failure at `offset` seconds into a job wastes `offset +
//! detect_timeout` seconds, then the job is discarded and restarted —
//! §V-A), the same OPTIMISTIC/REPL/hybrid behaviours.

use crate::hw::HwProfile;
use crate::jobsim::{JobSim, RecomputeSpec};
use crate::report::{SimChainReport, SimEvent};
use crate::state::{Node, SimState};
use crate::workload::WorkloadCfg;
use rcmp_core::strategy::{HotspotMitigation, SplitPolicy, Strategy};
use rcmp_model::rng::derive_indexed;
use rcmp_model::{ChainCacheConfig, PlacementKernel, RetryPolicy};
use rcmp_policy::{choose_mitigation, AdaptivePolicy, FaultObserver, Membership};
use std::collections::BTreeSet;

/// One scripted failure: kill `node` `offset` seconds into run `seq`
/// (the paper injects 15 s after job start; seq numbering counts every
/// run, so "failure at job 7" after earlier recomputations shifts —
/// exactly the paper's Fig. 7 numbering).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureAt {
    pub seq: u64,
    pub offset: f64,
    pub node: Node,
}

impl FailureAt {
    /// The paper's standard injection: 15 s into run `seq`.
    pub fn at_job(seq: u64, node: Node) -> Self {
        Self {
            seq,
            offset: 15.0,
            node,
        }
    }
}

/// Chain simulation configuration.
#[derive(Clone, Debug)]
pub struct ChainSimConfig {
    pub hw: HwProfile,
    pub wl: WorkloadCfg,
    pub strategy: Strategy,
    pub failures: Vec<FailureAt>,
    /// Retry budgets and seeded backoff, mirroring the engine's
    /// `ClusterConfig::retry`: the same full-jitter delays the engine
    /// sleeps show up here as simulated time.
    pub retry: RetryPolicy,
    /// Seed the backoff jitter derives from (the engine uses
    /// `ClusterConfig::seed`).
    pub seed: u64,
    /// Placement kernel, mirroring `ClusterConfig::placement`.
    pub placement: PlacementKernel,
    /// Optional initial membership (racks, heterogeneous capacities).
    /// `None` = uniform over `wl.nodes`.
    pub membership: Option<Membership>,
    /// Inter-job chain cache, mirroring `ClusterConfig::chain_cache`:
    /// when enabled, each job's reducer outputs stay memory-resident
    /// (within the budget) for the next job's mappers.
    pub chain_cache: ChainCacheConfig,
}

impl ChainSimConfig {
    pub fn new(hw: HwProfile, wl: WorkloadCfg, strategy: Strategy) -> Self {
        Self {
            hw,
            wl,
            strategy,
            failures: Vec::new(),
            retry: RetryPolicy::default(),
            seed: 0,
            placement: PlacementKernel::Default,
            membership: None,
            chain_cache: ChainCacheConfig::default(),
        }
    }

    pub fn with_failures(mut self, failures: Vec<FailureAt>) -> Self {
        self.failures = failures;
        self
    }

    /// Overrides the retry policy and the seed its jitter derives from.
    pub fn with_retry(mut self, retry: RetryPolicy, seed: u64) -> Self {
        self.retry = retry;
        self.seed = seed;
        self
    }

    /// Selects the placement kernel every run schedules with.
    pub fn with_placement(mut self, kernel: PlacementKernel) -> Self {
        self.placement = kernel;
        self
    }

    /// Starts the chain from an explicit membership (racked or
    /// heterogeneous) instead of a uniform one. Must cover `wl.nodes`.
    pub fn with_membership(mut self, membership: Membership) -> Self {
        self.membership = Some(membership);
        self
    }

    /// Enables the inter-job chain cache with the given byte budget.
    pub fn with_chain_cache(mut self, budget: rcmp_model::ByteSize) -> Self {
        self.chain_cache = ChainCacheConfig::enabled(budget);
        self
    }
}

/// Simulates the chain to completion; panics only on unrecoverable
/// configuration errors (e.g. every node failed).
pub fn simulate_chain(cfg: &ChainSimConfig) -> SimChainReport {
    Runner::new(cfg).run()
}

struct Runner<'a> {
    cfg: &'a ChainSimConfig,
    js: JobSim,
    state: SimState,
    report: SimChainReport,
    t: f64,
    seq: u64,
    /// Jobs completed since the last replication point (dynamic hybrid).
    jobs_since_point: u32,
    /// The closed-loop policy (AdaptiveHybrid): literally the same
    /// `rcmp_policy::adapt` kernel the engine driver runs, fed from the
    /// sim's failure timeline, so decision sequences agree byte for
    /// byte given the same fault sequence.
    adaptive: Option<AdaptivePolicy>,
    /// Cancel → recover → retry cycles this chain pass (the engine's
    /// `job_recoveries` counter), which paces the chain-level backoff.
    job_recoveries: u32,
}

enum RunOutcome {
    Completed,
    Cancelled,
}

impl<'a> Runner<'a> {
    fn new(cfg: &'a ChainSimConfig) -> Self {
        let mut state = SimState::new(&cfg.wl);
        if let Some(m) = &cfg.membership {
            state.set_membership(m.clone());
        }
        if cfg.chain_cache.enabled {
            state.enable_chain_cache(cfg.chain_cache.budget.as_u64());
        }
        Self {
            cfg,
            js: JobSim::new(cfg.hw.clone(), cfg.wl.clone()).with_placement(cfg.placement),
            state,
            report: SimChainReport::default(),
            t: 0.0,
            seq: 0,
            jobs_since_point: 0,
            adaptive: match cfg.strategy {
                Strategy::AdaptiveHybrid { adapt, .. } => Some(AdaptivePolicy::new(adapt)),
                _ => None,
            },
            job_recoveries: 0,
        }
    }

    fn replication(&self) -> u32 {
        self.cfg.strategy.output_replication()
    }

    fn persists(&self) -> bool {
        self.cfg.strategy.persists_outputs()
    }

    /// Failures scheduled for the given run (the paper's FAIL X,X case
    /// injects two failures in the same job, the second 15 s after the
    /// first).
    fn failures_for(&self, seq: u64) -> Vec<FailureAt> {
        self.cfg
            .failures
            .iter()
            .copied()
            .filter(|f| f.seq == seq)
            .collect()
    }

    fn run(mut self) -> SimChainReport {
        let jobs = self.cfg.wl.jobs;
        let mut restarts = 0u32;
        'chain: loop {
            let mut j = 1u32;
            self.job_recoveries = 0;
            while j <= jobs {
                match self.run_one(j) {
                    RunOutcome::Completed => {
                        self.maybe_replicate(j);
                        j += 1;
                    }
                    RunOutcome::Cancelled => {
                        // Seeded backoff before another recovery cycle,
                        // mirroring the engine driver's delay.
                        self.job_recoveries += 1;
                        let delay_ms = self.cfg.retry.backoff_ms(
                            derive_indexed(self.cfg.seed, "chain-backoff", u64::from(j)),
                            self.job_recoveries,
                        );
                        if delay_ms > 0 {
                            let secs = delay_ms as f64 / 1000.0;
                            self.t += secs;
                            self.report.backoff_secs += secs;
                        }
                        match self.cfg.strategy {
                            Strategy::Optimistic | Strategy::Replication { .. } => {
                                // Restart the whole computation.
                                restarts += 1;
                                assert!(restarts < 100, "chain cannot make progress");
                                self.report
                                    .events
                                    .push(SimEvent::ChainRestarted { at: self.t });
                                for job in 1..=jobs {
                                    self.state.clear_job_outputs(job);
                                    if let Some(f) = self.state.files.get_mut(&job) {
                                        f.partitions.clear();
                                    }
                                }
                                continue 'chain;
                            }
                            Strategy::Rcmp { split, hotspot } => {
                                self.recover(j, split, hotspot);
                            }
                            Strategy::Hybrid { split, .. }
                            | Strategy::DynamicHybrid { split, .. }
                            | Strategy::AdaptiveHybrid { split, .. } => {
                                self.recover(j, split, HotspotMitigation::SplitReducers);
                            }
                        }
                        // retry the same job
                    }
                }
            }
            self.report.total_time = self.t;
            self.report.jobs_started = self.seq;
            return self.report;
        }
    }

    /// Runs one full (non-recompute) attempt of job `j`. Applies a
    /// scheduled failure if one lands on this run.
    fn run_one(&mut self, j: u32) -> RunOutcome {
        self.seq += 1;
        let seq = self.seq;
        for f in self.failures_for(seq) {
            // Failure mid-run: the work until detection is wasted (the
            // paper's RCMP discards partial results; we apply the same
            // accounting to every strategy — a ~45 s symmetric penalty).
            self.report.events.push(SimEvent::FailureInjected {
                at: self.t + f.offset,
                node: f.node,
            });
            self.t += f.offset + self.cfg.hw.detect_timeout;
            self.report.events.push(SimEvent::FailureDetected {
                at: self.t,
                node: f.node,
            });
            self.state.fail_node(f.node);
            self.observe_fault(1);
            assert!(
                !self.state.live_nodes().is_empty(),
                "every node failed: unrecoverable"
            );
        }
        self.finish_full(j, seq)
    }

    fn finish_full(&mut self, j: u32, seq: u64) -> RunOutcome {
        // Check input availability (this or a previous failure may have
        // broken it).
        if j > 1 {
            let lost = self.state.files[&(j - 1)].lost_partitions(&self.state);
            if !lost.is_empty() {
                return RunOutcome::Cancelled;
            }
        }
        let (replication, persists) = (self.replication(), self.persists());
        let mut rep = self
            .js
            .run_full(&mut self.state, j, replication, persists)
            .expect("chain keeps at least one live node");
        rep.seq = seq;
        self.t += rep.duration;
        self.report.events.push(SimEvent::JobCompleted {
            seq,
            job: j,
            at: self.t,
        });
        self.report.runs.push(rep);
        RunOutcome::Completed
    }

    /// Cascading recomputation so that job `target` can restart —
    /// the sim-state version of `rcmp-core::planner::plan_recovery`.
    fn recover(&mut self, target: u32, split: SplitPolicy, hotspot: HotspotMitigation) {
        let survivors = self.state.live_nodes().len();
        let mitigation = choose_mitigation(split, hotspot, survivors);

        // Plan: walk back from the target's input.
        let mut steps: Vec<(u32, BTreeSet<u32>)> = Vec::new();
        let mut need_file = target - 1;
        let mut need: BTreeSet<u32> = self
            .state
            .files
            .get(&need_file)
            .map(|f| f.lost_partitions(&self.state))
            .unwrap_or_default();
        while !need.is_empty() {
            assert!(need_file >= 1, "external input lost: unrecoverable");
            let producer = need_file;
            steps.push((producer, need.clone()));
            // Which input partitions do the producer's re-running
            // mappers read?
            let input = producer - 1;
            let block = self.cfg.wl.block_size.as_u64();
            let mut rerun_pids = BTreeSet::new();
            for (pid, blk, _, _) in self.state.file_blocks(input, block) {
                let v = self.state.partition_version(input, pid);
                if !self.state.map_output_valid((producer, pid, blk), v) {
                    rerun_pids.insert(pid);
                }
            }
            let lost_deeper = self
                .state
                .files
                .get(&input)
                .map(|f| f.lost_partitions(&self.state))
                .unwrap_or_default();
            need = rerun_pids.intersection(&lost_deeper).copied().collect();
            need_file = input;
        }
        steps.reverse();
        self.report.events.push(SimEvent::RecoveryPlanned {
            steps: steps.len(),
            partitions: steps.iter().map(|(_, p)| p.len()).sum(),
        });

        for (job, partitions) in steps {
            self.seq += 1;
            let seq = self.seq;
            // A nested failure can land on a recovery run too (§IV-A).
            let nested = self.failures_for(seq);
            if !nested.is_empty() {
                for f in nested {
                    self.report.events.push(SimEvent::FailureInjected {
                        at: self.t + f.offset,
                        node: f.node,
                    });
                    self.t += f.offset + self.cfg.hw.detect_timeout;
                    self.report.events.push(SimEvent::FailureDetected {
                        at: self.t,
                        node: f.node,
                    });
                    self.state.fail_node(f.node);
                    self.observe_fault(1);
                }
                // Replan from merged damage and continue recovering.
                return self.recover(target, split, hotspot);
            }
            let mut spec = RecomputeSpec::new(partitions.iter().copied(), mitigation.split);
            spec.spread_output = mitigation.spread_output;
            let persists = self.persists();
            let mut rep = self
                .js
                .run_recompute(&mut self.state, job, &spec, persists)
                .expect("chain keeps at least one live node");
            rep.seq = seq;
            self.t += rep.duration;
            self.report.events.push(SimEvent::JobCompleted {
                seq,
                job,
                at: self.t,
            });
            self.report.runs.push(rep);
        }
    }

    /// Feeds an observed node failure into the closed-loop estimator,
    /// when the strategy runs one (the sim-timeline analogue of the
    /// engine driver's loss records).
    fn observe_fault(&mut self, n: u32) {
        if let Some(policy) = self.adaptive.as_mut() {
            policy.record_fault(n);
        }
    }

    /// Hybrid replication point: static modulus (§IV-C), the dynamic
    /// expected-cost policy, or the closed-loop adaptive policy (§IV-C
    /// future work). After a due job, raise its output to `factor`
    /// replicas, paying the copy time.
    fn maybe_replicate(&mut self, j: u32) {
        let (factor, reclaim, due) = match self.cfg.strategy {
            Strategy::Hybrid {
                every_k,
                factor,
                reclaim,
                ..
            } => (factor, reclaim, every_k != 0 && j.is_multiple_of(every_k)),
            Strategy::DynamicHybrid {
                factor,
                policy,
                reclaim,
                ..
            } => {
                self.jobs_since_point += 1;
                (
                    factor,
                    reclaim,
                    policy.should_replicate(self.jobs_since_point),
                )
            }
            Strategy::AdaptiveHybrid {
                factor, reclaim, ..
            } => {
                let policy = self
                    .adaptive
                    .as_mut()
                    .expect("AdaptiveHybrid carries a policy");
                let due = policy.job_completed();
                let step = *policy
                    .trajectory()
                    .last()
                    .expect("job_completed records a step");
                self.report.adaptation.push(step);
                (factor, reclaim, due)
            }
            _ => return,
        };
        if !due {
            return;
        }
        self.jobs_since_point = 0;
        let bytes = self.state.files.get(&j).map(|f| f.bytes()).unwrap_or(0);
        let copies = (factor.saturating_sub(1)) as u64 * bytes;
        let live = self.state.live_nodes().len().max(1) as f64;
        // Cluster-wide parallel copy: disk write is the bottleneck.
        let secs = copies as f64 / (self.cfg.hw.disk_write_bw * live);
        self.t += secs;
        self.state.replicate_file(j, factor);
        self.report
            .events
            .push(SimEvent::ReplicationPoint { job: j, at: self.t });
        if reclaim {
            for job in 1..=j {
                self.state.clear_job_outputs(job);
            }
            for job in 1..j {
                if let Some(f) = self.state.files.get_mut(&job) {
                    f.partitions.clear();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SimChainReport;
    use rcmp_model::{ByteSize, SlotConfig};

    fn wl_small() -> WorkloadCfg {
        WorkloadCfg {
            nodes: 6,
            slots: SlotConfig::ONE_ONE,
            jobs: 4,
            per_node_input: ByteSize::mib(512),
            block_size: ByteSize::mib(128),
            num_reducers: 6,
            map_ratio: 1.0,
            reduce_ratio: 1.0,
            input_replication: 3,
        }
    }

    fn run(strategy: Strategy, failures: Vec<FailureAt>) -> SimChainReport {
        let cfg =
            ChainSimConfig::new(HwProfile::stic(), wl_small(), strategy).with_failures(failures);
        simulate_chain(&cfg)
    }

    #[test]
    fn failure_free_rcmp_beats_replication() {
        let rcmp = run(Strategy::rcmp_no_split(), vec![]);
        let repl2 = run(Strategy::Replication { factor: 2 }, vec![]);
        let repl3 = run(Strategy::Replication { factor: 3 }, vec![]);
        assert_eq!(rcmp.jobs_started, 4);
        assert!(
            repl2.total_time > rcmp.total_time * 1.1,
            "{} vs {}",
            repl2.total_time,
            rcmp.total_time
        );
        assert!(
            repl3.total_time > repl2.total_time,
            "{} vs {}",
            repl3.total_time,
            repl2.total_time
        );
    }

    #[test]
    fn optimistic_equals_rcmp_without_failures() {
        let rcmp = run(Strategy::rcmp_no_split(), vec![]);
        let opt = run(Strategy::Optimistic, vec![]);
        assert!((rcmp.total_time - opt.total_time).abs() < 1.0);
    }

    #[test]
    fn single_failure_rcmp_recovers_with_recomputation() {
        let clean = run(Strategy::rcmp_no_split(), vec![]);
        let failed = run(Strategy::rcmp_no_split(), vec![FailureAt::at_job(3, 5)]);
        assert!(failed.jobs_started > 4, "recomputations happened");
        assert!(failed.recompute_runs().count() > 0);
        assert!(failed.total_time > clean.total_time);
        // Recovery is far cheaper than re-running everything.
        let opt = run(Strategy::Optimistic, vec![FailureAt::at_job(3, 5)]);
        assert!(
            failed.total_time < opt.total_time,
            "RCMP {} !< OPTIMISTIC {}",
            failed.total_time,
            opt.total_time
        );
    }

    #[test]
    fn late_failure_cascades_further_than_early() {
        let early = run(Strategy::rcmp_no_split(), vec![FailureAt::at_job(2, 5)]);
        let late = run(Strategy::rcmp_no_split(), vec![FailureAt::at_job(4, 5)]);
        assert!(
            late.recompute_runs().count() >= early.recompute_runs().count(),
            "late failures recompute at least as many jobs"
        );
    }

    #[test]
    fn split_recovery_is_faster() {
        let no_split = run(Strategy::rcmp_no_split(), vec![FailureAt::at_job(4, 5)]);
        let split = run(Strategy::rcmp_split(5), vec![FailureAt::at_job(4, 5)]);
        assert!(
            split.total_time < no_split.total_time,
            "split {} !< no-split {}",
            split.total_time,
            no_split.total_time
        );
    }

    #[test]
    fn replication_absorbs_failure_without_restart() {
        let r = run(
            Strategy::Replication { factor: 2 },
            vec![FailureAt::at_job(3, 5)],
        );
        assert_eq!(
            r.events
                .iter()
                .filter(|e| matches!(e, SimEvent::ChainRestarted { .. }))
                .count(),
            0
        );
        assert_eq!(r.jobs_started, 4, "no resubmissions: intra-job recovery");
    }

    #[test]
    fn optimistic_restarts_on_loss() {
        let r = run(Strategy::Optimistic, vec![FailureAt::at_job(3, 5)]);
        assert_eq!(
            r.events
                .iter()
                .filter(|e| matches!(e, SimEvent::ChainRestarted { .. }))
                .count(),
            1
        );
        assert!(r.jobs_started > 4);
    }

    #[test]
    fn hybrid_replication_points_fire_and_bound_cascade() {
        let r = run(
            Strategy::Hybrid {
                split: SplitPolicy::None,
                every_k: 2,
                factor: 2,
                reclaim: false,
            },
            vec![FailureAt::at_job(4, 5)],
        );
        let points: Vec<u32> = r
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::ReplicationPoint { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert!(points.contains(&2));
        // No recompute run at or below the replication point at job 2.
        for run in r.recompute_runs() {
            assert!(
                run.job > 2,
                "cascade crossed replication point: job {}",
                run.job
            );
        }
    }

    #[test]
    fn nested_failure_replans() {
        // Second failure lands on the first recovery run (seq 5).
        let r = run(
            Strategy::rcmp_no_split(),
            vec![FailureAt::at_job(4, 5), FailureAt::at_job(5, 4)],
        );
        assert!(r.jobs_started > 5);
        let detected = r
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::FailureDetected { .. }))
            .count();
        assert_eq!(detected, 2);
    }

    #[test]
    fn double_failure_rcmp_still_completes() {
        let r = run(
            Strategy::rcmp_split(4),
            vec![FailureAt::at_job(2, 0), FailureAt::at_job(6, 3)],
        );
        assert!(r.total_time > 0.0);
        assert_eq!(
            r.events
                .iter()
                .filter(|e| matches!(e, SimEvent::FailureDetected { .. }))
                .count(),
            2
        );
    }
}
