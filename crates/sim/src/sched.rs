//! Wave assignment — thin adapters over the shared policy kernel
//! (`rcmp-policy`), so the simulator and `rcmp-engine` execute the *same*
//! implementation of RCMP's slot-pull and round-robin placement.

use crate::state::Node;
use rcmp_model::{PlacementKernel, Result};
use rcmp_policy::{
    CacheAffinity, FnMapTasks, FnReduceTasks, KernelTopology, Membership, PolicyCtx,
    ReduceAssignment, SliceTopology,
};

/// Assigns tasks with Hadoop's slot-pull semantics: nodes claim tasks in
/// rounds, preferring a task whose *primary* replica they hold (the
/// writer-local copy), then any task whose data they hold, then stealing
/// a non-local task. Returns `(node, task_index)` per wave given `slots`
/// per node; `Err(NoLiveNodes)` if the cluster is fully dead.
pub fn assign_map_waves<P, Q>(
    num_tasks: usize,
    live: &[Node],
    slots: u32,
    primary: Q,
    prefers: P,
    ctx: PolicyCtx<'_>,
) -> Result<Vec<Vec<(Node, usize)>>>
where
    P: Fn(usize, Node) -> bool,
    Q: Fn(usize, Node) -> bool,
{
    let topo = SliceTopology::uniform(live, slots);
    let tasks = FnMapTasks::new(num_tasks, primary, prefers);
    rcmp_policy::assign_map_waves(&topo, &tasks, ctx)
}

/// Assigns reducers by the requested style: `RoundRobinByPartition` for
/// initial runs (keyed by partition id), `Balance` for recomputation
/// runs. `Err(NoLiveNodes)` if the cluster is fully dead.
pub fn assign_reduce_waves<K>(
    num_tasks: usize,
    live: &[Node],
    slots: u32,
    style: ReduceAssignment,
    key: K,
    ctx: PolicyCtx<'_>,
) -> Result<Vec<Vec<(Node, usize)>>>
where
    K: Fn(usize) -> usize,
{
    let topo = SliceTopology::new(live, slots, slots);
    let tasks = FnReduceTasks::new(num_tasks, key);
    rcmp_policy::assign_reduce_waves(&topo, &tasks, style, ctx)
}

/// Kernel-selectable variant of [`assign_map_waves`]: capacity and rack
/// hints come from the membership, aligned with `live` — the same
/// plumbing `rcmp-engine`'s scheduler does, so both backends hand the
/// policy kernel byte-identical inputs. `PlacementKernel::Default`
/// reproduces [`assign_map_waves`] exactly.
/// `cached` is the chain-cache affinity map: `cached(t)` names the node
/// holding task `t`'s input partition in memory, if any. Only the
/// `Stable` kernel consults it; pass `|_| None` when the cache is off
/// (every kernel then behaves exactly as before the cache existed) —
/// the same contract as the engine scheduler's `cached` slice.
#[allow(clippy::too_many_arguments)]
pub fn assign_map_waves_kernel<P, Q, C>(
    num_tasks: usize,
    live: &[Node],
    slots: u32,
    kernel: PlacementKernel,
    membership: &Membership,
    primary: Q,
    prefers: P,
    cached: C,
    ctx: PolicyCtx<'_>,
) -> Result<Vec<Vec<(Node, usize)>>>
where
    P: Fn(usize, Node) -> bool,
    Q: Fn(usize, Node) -> bool,
    C: Fn(usize) -> Option<Node>,
{
    let caps = membership.caps_for(live);
    let racks = membership.racks_for(live);
    let topo = KernelTopology::uniform(live, slots, &caps, &racks);
    let tasks = CacheAffinity::new(FnMapTasks::new(num_tasks, primary, prefers), cached);
    rcmp_policy::assign_map_waves_kernel(&topo, &tasks, kernel, ctx)
}

/// Kernel-selectable variant of [`assign_reduce_waves`].
#[allow(clippy::too_many_arguments)]
pub fn assign_reduce_waves_kernel<K>(
    num_tasks: usize,
    live: &[Node],
    slots: u32,
    style: ReduceAssignment,
    kernel: PlacementKernel,
    membership: &Membership,
    key: K,
    ctx: PolicyCtx<'_>,
) -> Result<Vec<Vec<(Node, usize)>>>
where
    K: Fn(usize) -> usize,
{
    let caps = membership.caps_for(live);
    let racks = membership.racks_for(live);
    let topo = KernelTopology::new(live, slots, slots, &caps, &racks);
    let tasks = FnReduceTasks::new(num_tasks, key);
    rcmp_policy::assign_reduce_waves_kernel(&topo, &tasks, style, kernel, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_fills_all_nodes() {
        let live: Vec<Node> = (0..4).collect();
        let waves = assign_map_waves(
            8,
            &live,
            1,
            |_, _| false,
            |_, _| false,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 4);
    }

    #[test]
    fn locality_tie_break() {
        let live: Vec<Node> = (0..4).collect();
        // Every task prefers node 2; only the first per wave-round can
        // have it, the rest balance.
        let waves = assign_map_waves(
            4,
            &live,
            1,
            |_, _| false,
            |_, n| n == 2,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        let on2 = waves[0].iter().filter(|(n, _)| *n == 2).count();
        assert_eq!(on2, 1);
    }

    #[test]
    fn round_robin_wave_count() {
        let live: Vec<Node> = (0..10).collect();
        // 40 reducers keyed by their index: 4 waves (paper's WR example).
        let waves = assign_reduce_waves(
            40,
            &live,
            1,
            ReduceAssignment::RoundRobinByPartition,
            |t| t,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 4);
    }

    #[test]
    fn empty_tasks_no_waves() {
        let live: Vec<Node> = (0..2).collect();
        assert!(assign_map_waves(
            0,
            &live,
            1,
            |_, _| false,
            |_, _| false,
            PolicyCtx::disabled()
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn default_kernel_matches_plain_adapter() {
        let live: Vec<Node> = (0..4).collect();
        let m = Membership::uniform(4);
        let plain = assign_map_waves(
            8,
            &live,
            1,
            |_, _| false,
            |_, n| n == 1,
            PolicyCtx::disabled(),
        )
        .unwrap();
        let kernel = assign_map_waves_kernel(
            8,
            &live,
            1,
            PlacementKernel::Default,
            &m,
            |_, _| false,
            |_, n| n == 1,
            |_| None,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(plain, kernel);
    }

    #[test]
    fn capacity_kernel_reads_membership_caps() {
        let mut m = Membership::uniform(1);
        m.join(3, 0);
        let live = m.schedulable();
        let waves = assign_map_waves_kernel(
            8,
            &live,
            1,
            PlacementKernel::CapacityWeighted,
            &m,
            |_, _| false,
            |_, _| false,
            |_| None,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 2, "3+1 capacity drains 8 tasks in 2 waves");
        let on_big = waves.iter().flatten().filter(|(n, _)| *n == 1).count();
        assert_eq!(on_big, 6);
    }

    #[test]
    fn dead_cluster_is_a_typed_error() {
        let live: Vec<Node> = Vec::new();
        let err = assign_map_waves(
            3,
            &live,
            1,
            |_, _| false,
            |_, _| false,
            PolicyCtx::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, rcmp_model::Error::NoLiveNodes));
    }
}
