//! Wave assignment — the same policies as `rcmp-engine::scheduler`,
//! restated over the simulator's lightweight task tuples so wave counts
//! match the real engine exactly (validated in the integration suite).

use crate::state::Node;

/// Assigns tasks with Hadoop's slot-pull semantics: nodes claim tasks in
/// rounds. Each node prefers a task whose *primary* replica it holds
/// (the writer-local copy), then any task whose data it holds, then
/// steals a non-local task. Balanced data therefore runs (almost)
/// fully local — without the primary preference, nodes eat each other's
/// blocks early and leave a contended non-local tail, which real Hadoop
/// avoids — while a handful of recomputed tasks still spreads over all
/// nodes in one wave. Returns `(node, task_index)` per wave given
/// `slots` per node.
pub fn assign_waves_balanced<P, Q>(
    num_tasks: usize,
    live: &[Node],
    slots: u32,
    primary: Q,
    prefers: P,
) -> Vec<Vec<(Node, usize)>>
where
    P: Fn(usize, Node) -> bool,
    Q: Fn(usize, Node) -> bool,
{
    assert!(!live.is_empty(), "no live nodes");
    let mut pending: Vec<usize> = (0..num_tasks).collect();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    while !pending.is_empty() {
        for (i, &n) in live.iter().enumerate() {
            if pending.is_empty() {
                break;
            }
            let pos = pending
                .iter()
                .position(|&t| primary(t, n))
                .or_else(|| pending.iter().position(|&t| prefers(t, n)))
                .unwrap_or(0);
            queues[i].push(pending.remove(pos));
        }
    }
    queues_to_waves(queues, live, slots)
}

/// Round-robin by an explicit key (initial-run reducers: partition id).
pub fn assign_waves_round_robin<K>(
    num_tasks: usize,
    live: &[Node],
    slots: u32,
    key: K,
) -> Vec<Vec<(Node, usize)>>
where
    K: Fn(usize) -> usize,
{
    assert!(!live.is_empty(), "no live nodes");
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    for t in 0..num_tasks {
        queues[key(t) % live.len()].push(t);
    }
    queues_to_waves(queues, live, slots)
}

fn queues_to_waves(
    queues: Vec<Vec<usize>>,
    live: &[Node],
    slots: u32,
) -> Vec<Vec<(Node, usize)>> {
    let slots = slots.max(1) as usize;
    let num_waves = queues
        .iter()
        .map(|q| q.len().div_ceil(slots))
        .max()
        .unwrap_or(0);
    let mut waves = vec![Vec::new(); num_waves];
    for (ni, q) in queues.into_iter().enumerate() {
        for (ti, t) in q.into_iter().enumerate() {
            waves[ti / slots].push((live[ni], t));
        }
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_fills_all_nodes() {
        let live: Vec<Node> = (0..4).collect();
        let waves = assign_waves_balanced(8, &live, 1, |_, _| false, |_, _| false);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 4);
    }

    #[test]
    fn locality_tie_break() {
        let live: Vec<Node> = (0..4).collect();
        // Every task prefers node 2; only the first per wave-round can
        // have it, the rest balance.
        let waves = assign_waves_balanced(4, &live, 1, |_, _| false, |_, n| n == 2);
        assert_eq!(waves.len(), 1);
        let on2 = waves[0].iter().filter(|(n, _)| *n == 2).count();
        assert_eq!(on2, 1);
    }

    #[test]
    fn round_robin_wave_count() {
        let live: Vec<Node> = (0..10).collect();
        // 40 reducers keyed by their index: 4 waves (paper's WR example).
        let waves = assign_waves_round_robin(40, &live, 1, |t| t);
        assert_eq!(waves.len(), 4);
    }

    #[test]
    fn empty_tasks_no_waves() {
        let live: Vec<Node> = (0..2).collect();
        assert!(assign_waves_balanced(0, &live, 1, |_, _| false, |_, _| false).is_empty());
    }
}
