//! Converts a [`SimChainReport`] into the observability span schema.
//!
//! The simulator predates the tracer and keeps its own timeline
//! ([`SimEvent`]s in seconds); this module lowers that timeline into the
//! same [`Trace`] the real engine produces, so the analyzers and
//! exporters in `rcmp-obs` (slot occupancy, critical path, Chrome trace
//! export) work on simulated chains at paper scale too.
//!
//! Mapping notes:
//!
//! * Simulated seconds become microseconds (the span clock unit).
//! * A run's `JobRun` span ends at its `JobCompleted` timestamp and
//!   starts `duration` earlier; runs without a completion event (none
//!   in practice) start at 0.
//! * Per-task durations are emitted as `Task` spans starting at the
//!   phase start — the simulator does not retain per-wave placement, so
//!   `Wave` spans use an even split of tasks over the recorded wave
//!   count. Wave capacity is the chain's fullest wave of that phase
//!   (full runs fill the cluster, so this estimates the cluster's slot
//!   capacity); recomputation runs then show Fig. 4's under-utilization.
//! * `FailureInjected` becomes a `Fault` instant; `RecoveryPlanned`
//!   becomes a `RecoveryPlan` span caused by the latest fault (the sim
//!   event does not name the recovery target, so the plan's `target` is
//!   `JobId(0)`); each recompute `JobRun` is caused by the latest plan
//!   (or fault) at its start time — the same causal chain the engine
//!   records live.

use crate::report::{SimChainReport, SimEvent, SimJobReport};
use rcmp_model::{JobId, NodeId, TaskId};
use rcmp_obs::{FaultKind, Phase, Span, SpanId, SpanKind, Trace};

/// Seconds → span microseconds.
fn us(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

struct Builder {
    spans: Vec<Span>,
    next: u64,
}

impl Builder {
    fn new() -> Self {
        Self {
            spans: Vec::new(),
            next: 1,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        kind: SpanKind,
        parent: Option<SpanId>,
        cause: Option<SpanId>,
        node: Option<NodeId>,
        start_us: u64,
        end_us: u64,
    ) -> SpanId {
        let id = SpanId(self.next);
        self.next += 1;
        self.spans.push(Span {
            id,
            parent,
            cause,
            node,
            start_us,
            end_us,
            kind,
        });
        id
    }
}

/// Tasks per wave under an even split.
fn per_wave(n: usize, waves: u32) -> usize {
    if waves == 0 {
        0
    } else {
        n.div_ceil(waves as usize)
    }
}

/// Emits `Wave` spans for one phase: `n` tasks spread evenly over
/// `waves` waves across the run's phase window, with `capacity` slots
/// per wave (the chain-wide estimate).
#[allow(clippy::too_many_arguments)]
fn emit_waves(
    b: &mut Builder,
    parent: SpanId,
    phase: Phase,
    n: usize,
    waves: u32,
    capacity: u32,
    start_us: u64,
    end_us: u64,
) {
    if waves == 0 || n == 0 {
        return;
    }
    let per_wave = per_wave(n, waves);
    let width = (end_us.saturating_sub(start_us)) / waves as u64;
    let mut remaining = n;
    for w in 0..waves {
        let tasks = remaining.min(per_wave);
        remaining -= tasks;
        let ws = start_us + width * w as u64;
        let we = if w + 1 == waves { end_us } else { ws + width };
        b.push(
            SpanKind::Wave {
                phase,
                index: w,
                tasks: tasks as u32,
                capacity: capacity.max(tasks as u32),
            },
            Some(parent),
            None,
            None,
            ws,
            we,
        );
    }
}

fn emit_run(
    b: &mut Builder,
    run: &SimJobReport,
    end_at: Option<f64>,
    cause: Option<SpanId>,
    caps: (u32, u32),
) {
    let dur_us = us(run.duration);
    let (start, end) = match end_at {
        Some(at) => (us(at).saturating_sub(dur_us), us(at)),
        None => (0, dur_us),
    };
    let job = JobId(run.job);
    let job_span = b.push(
        SpanKind::JobRun {
            seq: run.seq,
            job,
            recompute: run.recompute,
            live_nodes: 0,
            map_slots: 0,
            reduce_slots: 0,
            ok: true,
            tenant: None,
        },
        None,
        cause,
        None,
        start,
        end,
    );
    // Map phase occupies the window up to the longest mapper; reducers
    // start after it.
    let map_end = start
        + run
            .mapper_durations
            .iter()
            .copied()
            .fold(0u64, |m, d| m.max(us(d)));
    emit_waves(
        b,
        job_span,
        Phase::Map,
        run.mapper_durations.len(),
        run.map_waves,
        caps.0,
        start,
        map_end.min(end),
    );
    emit_waves(
        b,
        job_span,
        Phase::Reduce,
        run.reducer_durations.len(),
        run.reduce_waves,
        caps.1,
        map_end.min(end),
        end,
    );
    for (i, d) in run.mapper_durations.iter().enumerate() {
        b.push(
            SpanKind::Task {
                id: TaskId::Map(rcmp_model::MapTaskId::new(job, i as u32)),
                bytes_in: 0,
                bytes_out: 0,
                input_source: None,
                ok: true,
            },
            Some(job_span),
            None,
            None,
            start,
            (start + us(*d)).min(end),
        );
    }
    for (i, d) in run.reducer_durations.iter().enumerate() {
        let rs = map_end.min(end);
        b.push(
            SpanKind::Task {
                id: TaskId::Reduce(rcmp_model::ReduceTaskId::whole(
                    job,
                    rcmp_model::PartitionId(i as u32),
                )),
                bytes_in: 0,
                bytes_out: 0,
                input_source: None,
                ok: true,
            },
            Some(job_span),
            None,
            None,
            rs,
            (rs + us(*d)).min(end),
        );
    }
}

/// Lowers a simulated chain into the engine's span schema.
pub fn chain_trace(report: &SimChainReport) -> Trace {
    let mut b = Builder::new();

    // Slot-capacity estimate per phase: the chain's fullest wave. Full
    // runs fill the cluster, so this recovers the slot count without the
    // report having to carry the workload config.
    let caps = report.runs.iter().fold((0u32, 0u32), |acc, r| {
        (
            acc.0
                .max(per_wave(r.mapper_durations.len(), r.map_waves) as u32),
            acc.1
                .max(per_wave(r.reducer_durations.len(), r.reduce_waves) as u32),
        )
    });

    // Timeline events first: faults and plans carry the causal chain.
    // `causes` is the chronological list of candidate cause spans.
    let mut completed_at: Vec<(u64, f64)> = Vec::new();
    let mut causes: Vec<(u64, SpanId)> = Vec::new();
    let mut last_at = 0.0f64;
    let mut last_fault: Option<SpanId> = None;
    for e in &report.events {
        match e {
            SimEvent::JobCompleted { seq, at, .. } => {
                completed_at.push((*seq, *at));
                last_at = *at;
            }
            SimEvent::FailureInjected { at, node } => {
                let id = b.push(
                    SpanKind::Fault {
                        seq: 0,
                        kind: FaultKind::NodeCrash,
                        at: "Simulated".to_string(),
                    },
                    None,
                    None,
                    Some(NodeId(*node)),
                    us(*at),
                    us(*at),
                );
                last_fault = Some(id);
                causes.push((us(*at), id));
                last_at = *at;
            }
            SimEvent::FailureDetected { at, node } => {
                b.push(
                    SpanKind::Event {
                        seq: 0,
                        label: format!("failure_detected node {node}"),
                    },
                    None,
                    None,
                    Some(NodeId(*node)),
                    us(*at),
                    us(*at),
                );
                last_at = *at;
            }
            SimEvent::RecoveryPlanned { steps, partitions } => {
                let id = b.push(
                    SpanKind::RecoveryPlan {
                        target: JobId(0),
                        steps: *steps as u32,
                        partitions: *partitions as u32,
                    },
                    None,
                    last_fault,
                    None,
                    us(last_at),
                    us(last_at),
                );
                causes.push((us(last_at), id));
            }
            SimEvent::ChainRestarted { at } => {
                b.push(
                    SpanKind::Event {
                        seq: 0,
                        label: "chain_restarted".to_string(),
                    },
                    None,
                    None,
                    None,
                    us(*at),
                    us(*at),
                );
                last_at = *at;
            }
            SimEvent::ReplicationPoint { job, at } => {
                b.push(
                    SpanKind::Event {
                        seq: 0,
                        label: format!("replication_point job {job}"),
                    },
                    None,
                    None,
                    None,
                    us(*at),
                    us(*at),
                );
                last_at = *at;
            }
        }
    }

    for run in &report.runs {
        let end_at = completed_at
            .iter()
            .find(|(s, _)| *s == run.seq)
            .map(|(_, at)| *at);
        let cause = if run.recompute {
            let start = end_at.map(|at| us(at).saturating_sub(us(run.duration)));
            match start {
                // Latest cause at or before the run started (tolerance
                // for rounding), else the earliest one.
                Some(s) => causes
                    .iter()
                    .rev()
                    .find(|(at, _)| *at <= s + 1)
                    .or(causes.first())
                    .map(|(_, id)| *id),
                None => causes.last().map(|(_, id)| *id),
            }
        } else {
            None
        };
        emit_run(&mut b, run, end_at, cause, caps);
    }

    b.spans.sort_by_key(|s| (s.start_us, s.id.0));
    Trace { spans: b.spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SimIo;

    fn run(seq: u64, job: u32, dur: f64, recompute: bool) -> SimJobReport {
        SimJobReport {
            job,
            seq,
            duration: dur,
            map_waves: 2,
            reduce_waves: 1,
            mappers_run: 3,
            mappers_reused: 0,
            reduce_tasks_run: 2,
            mapper_durations: vec![1.0, 1.5, 0.5],
            reducer_durations: vec![2.0, 2.5],
            io: SimIo::default(),
            cache_hits: 0,
            cache_hits_local: 0,
            cache_read_bytes: 0,
            recompute,
            speculation: Default::default(),
        }
    }

    #[test]
    fn lowers_runs_waves_and_tasks() {
        let mut rep = SimChainReport::default();
        rep.runs.push(run(1, 1, 10.0, false));
        rep.events.push(SimEvent::JobCompleted {
            seq: 1,
            job: 1,
            at: 10.0,
        });
        let tr = chain_trace(&rep);
        assert_eq!(tr.of_kind("JobRun").count(), 1);
        assert_eq!(tr.of_kind("Wave").count(), 3, "2 map + 1 reduce");
        assert_eq!(tr.of_kind("Task").count(), 5, "3 mappers + 2 reducers");
        let job = tr.of_kind("JobRun").next().unwrap();
        assert_eq!(job.start_us, 0);
        assert_eq!(job.end_us, 10_000_000);
        // Waves and tasks hang off the run.
        assert!(tr
            .spans()
            .iter()
            .filter(|s| s.id != job.id)
            .all(|s| s.parent == Some(job.id)));
    }

    #[test]
    fn recompute_run_is_caused_by_the_plan() {
        let mut rep = SimChainReport::default();
        rep.runs.push(run(1, 1, 10.0, false));
        rep.runs.push(run(2, 1, 5.0, true));
        rep.events.push(SimEvent::JobCompleted {
            seq: 1,
            job: 1,
            at: 10.0,
        });
        rep.events
            .push(SimEvent::FailureInjected { at: 11.0, node: 2 });
        rep.events.push(SimEvent::RecoveryPlanned {
            steps: 1,
            partitions: 4,
        });
        rep.events.push(SimEvent::JobCompleted {
            seq: 2,
            job: 1,
            at: 17.0,
        });
        let tr = chain_trace(&rep);
        let plan = tr.of_kind("RecoveryPlan").next().expect("plan span");
        let fault = tr.of_kind("Fault").next().expect("fault span");
        assert_eq!(plan.cause, Some(fault.id));
        let recompute = tr
            .spans()
            .iter()
            .find(|s| {
                matches!(
                    s.kind,
                    SpanKind::JobRun {
                        recompute: true,
                        ..
                    }
                )
            })
            .expect("recompute run span");
        assert_eq!(recompute.cause, Some(plan.id));
        assert_eq!(recompute.start_us, 12_000_000);
    }
}
