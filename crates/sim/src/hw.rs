//! Hardware profiles (calibration constants).
//!
//! Calibrated to the evaluation clusters (§V-A). Absolute seconds are
//! not expected to match the paper's testbeds; the profiles only need
//! to put the resources in the same *regime* (disk-bound I/O jobs on a
//! 10 GbE network) so the comparative shapes hold.

use serde::{Deserialize, Serialize};

/// Cluster hardware model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HwProfile {
    /// Sequential disk read bandwidth per node, bytes/s.
    pub disk_read_bw: f64,
    /// Memory read bandwidth per node, bytes/s — the rate a mapper
    /// decodes a chain-cached partition at (no disk, no seek penalty).
    /// Only exercised when the chain cache is enabled.
    #[serde(default = "default_mem_read_bw")]
    pub mem_read_bw: f64,
    /// Sequential disk write bandwidth per node, bytes/s.
    pub disk_write_bw: f64,
    /// Seek-penalty coefficient: with `c` concurrent streams on one
    /// disk, aggregate bandwidth is `bw / (1 + seek_alpha * (e - 1))`
    /// where `e = min(c, seek_window)`. This is the §IV-B2 hot-spot
    /// mechanism: many readers converging on one node's disk collapse
    /// its effective throughput.
    pub seek_alpha: f64,
    /// Concurrency beyond this many streams queues instead of adding
    /// seek thrash (OS/HDFS request scheduling), bounding the aggregate
    /// degradation while per-stream shares keep shrinking.
    pub seek_window: usize,
    /// NIC bandwidth per node, bytes/s (10 GbE in both clusters).
    pub nic_bw: f64,
    /// Fraction of NIC bandwidth usable through the core fabric
    /// (oversubscription; 1.0 = non-blocking).
    pub fabric_factor: f64,
    /// CPU cost per byte for the map UDF, s/byte (MD5 + byte sum).
    pub map_cpu_per_byte: f64,
    /// CPU cost per byte for sort + reduce UDF, s/byte.
    pub reduce_cpu_per_byte: f64,
    /// Fixed per-task start/stop overhead, seconds (JVM reuse keeps it
    /// small; §V-A enables JVM reuse on DCO).
    pub task_overhead: f64,
    /// Fixed per-job overhead (submission, JobInit), seconds.
    pub job_overhead: f64,
    /// Added latency at the end of each shuffle transfer wave, seconds
    /// (0 normally; 10 s for the paper's SLOW SHUFFLE emulation, §V-D).
    pub shuffle_transfer_delay: f64,
    /// Failure detection timeout, seconds (30 s in the paper; failures
    /// injected 15 s into a job are detected ~45 s after job start).
    pub detect_timeout: f64,
}

const MB: f64 = 1024.0 * 1024.0;

/// DDR3-era single-stream copy rate; deliberately conservative so the
/// cache's win comes from skipping disk + network, not from an
/// optimistic memory figure.
fn default_mem_read_bw() -> f64 {
    6000.0 * MB
}

impl HwProfile {
    /// STIC-like: one SATA HDD per node, 10 GbE, 8 cores.
    pub fn stic() -> Self {
        Self {
            disk_read_bw: 110.0 * MB,
            mem_read_bw: default_mem_read_bw(),
            disk_write_bw: 90.0 * MB,
            seek_alpha: 0.35,
            seek_window: 8,
            nic_bw: 1100.0 * MB,
            fabric_factor: 1.0,
            map_cpu_per_byte: 2.0e-9,
            reduce_cpu_per_byte: 3.0e-9,
            task_overhead: 1.5,
            job_overhead: 8.0,
            shuffle_transfer_delay: 0.0,
            detect_timeout: 30.0,
        }
    }

    /// DCO-like: 2 TB SATA HDD per node, 10 GbE, 16 cores, 3 racks
    /// (mild oversubscription), JVM reuse enabled.
    pub fn dco() -> Self {
        Self {
            disk_read_bw: 140.0 * MB,
            mem_read_bw: default_mem_read_bw(),
            disk_write_bw: 120.0 * MB,
            seek_alpha: 0.35,
            seek_window: 8,
            nic_bw: 1100.0 * MB,
            fabric_factor: 0.7,
            map_cpu_per_byte: 1.5e-9,
            reduce_cpu_per_byte: 2.5e-9,
            task_overhead: 0.8,
            job_overhead: 8.0,
            shuffle_transfer_delay: 0.0,
            detect_timeout: 30.0,
        }
    }

    /// The SLOW SHUFFLE emulation of §V-D: a 10 s delay at the end of
    /// each shuffle transfer.
    pub fn with_slow_shuffle(mut self) -> Self {
        self.shuffle_transfer_delay = 10.0;
        self
    }

    /// Aggregate disk bandwidth available to `c` concurrent streams.
    pub fn disk_agg_bw(&self, base_bw: f64, c: usize) -> f64 {
        if c == 0 {
            return base_bw;
        }
        let e = c.min(self.seek_window.max(1));
        base_bw / (1.0 + self.seek_alpha * (e as f64 - 1.0))
    }

    /// Per-stream disk bandwidth with `c` concurrent streams.
    pub fn disk_stream_bw(&self, base_bw: f64, c: usize) -> f64 {
        self.disk_agg_bw(base_bw, c) / c.max(1) as f64
    }

    /// Effective cross-node bandwidth per stream given `c` streams
    /// sharing one NIC.
    pub fn nic_stream_bw(&self, c: usize) -> f64 {
        (self.nic_bw * self.fabric_factor) / c.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_penalty_degrades_aggregate() {
        let hw = HwProfile::stic();
        let one = hw.disk_agg_bw(hw.disk_read_bw, 1);
        let twenty = hw.disk_agg_bw(hw.disk_read_bw, 20);
        assert!((one - hw.disk_read_bw).abs() < 1.0);
        assert!(
            twenty < one / 3.0,
            "20 concurrent streams must collapse throughput: {twenty} vs {one}"
        );
        // The seek window bounds the damage: 20 streams equal 8.
        assert_eq!(twenty, hw.disk_agg_bw(hw.disk_read_bw, 8));
    }

    #[test]
    fn per_stream_bw_monotone_decreasing() {
        let hw = HwProfile::stic();
        let mut last = f64::INFINITY;
        for c in 1..30 {
            let bw = hw.disk_stream_bw(hw.disk_read_bw, c);
            assert!(bw < last);
            last = bw;
        }
    }

    #[test]
    fn slow_shuffle_sets_delay() {
        assert_eq!(HwProfile::stic().shuffle_transfer_delay, 0.0);
        assert_eq!(
            HwProfile::stic().with_slow_shuffle().shuffle_transfer_delay,
            10.0
        );
    }

    #[test]
    fn profiles_are_disk_bound() {
        // The paper's regime: network faster than disk.
        for hw in [HwProfile::stic(), HwProfile::dco()] {
            assert!(hw.nic_bw * hw.fabric_factor > hw.disk_read_bw * 2.0);
        }
    }
}
