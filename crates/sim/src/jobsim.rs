//! Simulates one MapReduce job run: wave-by-wave timing under a
//! quasi-static contention model.
//!
//! Within each wave the set of concurrent streams per resource is known
//! (tasks don't start or stop mid-wave at this granularity), so each
//! task's phase times follow from bandwidth shares:
//!
//! * a mapper reads its block from a source disk shared with that
//!   disk's other readers/writers this wave — when a recomputation wave
//!   converges on one node, the per-stream share collapses via the seek
//!   penalty, which *is* the hot-spot of §IV-B2;
//! * a reducer's fetch is bottlenecked by the slowest serving disk or
//!   by its NIC; the SLOW SHUFFLE emulation adds the §V-D per-transfer
//!   delay (serialized over the copier window, so it scales with the
//!   number of map outputs);
//! * output writes pay `replication ×` the disk work plus network for
//!   the remote copies — the REPL-2/REPL-3 overhead of Fig. 8;
//! * the first reducer wave's shuffle overlaps the map phase (§IV-B1:
//!   "only the first reducer wave overlaps with the map phase"); later
//!   waves pay their shuffle in full — the wave effects of Figs. 13/14.

use crate::hw::HwProfile;
use crate::report::SimJobReport;
use crate::sched::{assign_map_waves_kernel, assign_reduce_waves_kernel};
use crate::speculate::{speculate_wave, SpeculationCfg, WaveTask};
use crate::state::{MapOutputRec, Node, Segment, SimState};
use crate::workload::WorkloadCfg;
use rcmp_model::{PlacementKernel, Result};
use rcmp_obs::Tracer;
use rcmp_policy::{PolicyCtx, ReduceAssignment};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Instructions for a recomputation run. This *is* the shared
/// [`rcmp_policy::RecomputePlan`] — the same type the engine consumes as
/// `RecomputeInstructions` — so a plan computed by the middleware can be
/// replayed in the simulator verbatim.
pub use rcmp_policy::RecomputePlan as RecomputeSpec;

/// Simulates job runs for one workload + hardware profile.
#[derive(Clone)]
pub struct JobSim {
    pub hw: HwProfile,
    pub wl: WorkloadCfg,
    /// Optional speculative execution of map-wave stragglers (§III-A).
    pub speculation: Option<SpeculationCfg>,
    /// Non-collocated mode (§II): storage and computation separated —
    /// every mapper input read and every reducer output write crosses
    /// the network; data locality does not exist. "Our contributions
    /// directly apply also to the non-collocated case."
    pub noncollocated: bool,
    /// Placement kernel driving wave assignment (`Default` reproduces
    /// the historical slot-pull byte for byte).
    pub placement: PlacementKernel,
    /// Optional tracer: scheduling decisions emit `policy.*` spans.
    pub tracer: Option<Arc<Tracer>>,
}

impl std::fmt::Debug for JobSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSim")
            .field("hw", &self.hw)
            .field("wl", &self.wl)
            .field("speculation", &self.speculation)
            .field("noncollocated", &self.noncollocated)
            .field("placement", &self.placement)
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

struct MapTaskSim {
    pid: u32,
    blk: u32,
    bytes: u64,
    holders: Vec<Node>,
}

impl JobSim {
    pub fn new(hw: HwProfile, wl: WorkloadCfg) -> Self {
        Self {
            hw,
            wl,
            speculation: None,
            noncollocated: false,
            placement: PlacementKernel::Default,
            tracer: None,
        }
    }

    /// Enables speculative execution of map-wave stragglers.
    pub fn with_speculation(mut self, cfg: SpeculationCfg) -> Self {
        self.speculation = Some(cfg);
        self
    }

    /// Selects the placement kernel waves are assigned with.
    pub fn with_placement(mut self, kernel: PlacementKernel) -> Self {
        self.placement = kernel;
        self
    }

    /// Attaches a tracer: every wave-assignment decision emits a
    /// `policy.*` span.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Switches to the non-collocated deployment (§II): a storage tier
    /// of the same width serves all reads/writes over the network.
    pub fn noncollocated(mut self) -> Self {
        self.noncollocated = true;
        self
    }

    /// Full (initial or restarted) run of `job`. Fails with
    /// [`rcmp_model::Error::NoLiveNodes`] on a fully-dead cluster.
    pub fn run_full(
        &self,
        state: &mut SimState,
        job: u32,
        replication: u32,
        persist: bool,
    ) -> Result<SimJobReport> {
        // A restarted job discards partial results (§V-A) — including
        // any chain-cached copies of the discarded output (the engine's
        // `delete_file` invalidation hook).
        state.clear_job_outputs(job);
        if let Some(f) = state.files.get_mut(&job) {
            f.partitions.clear();
        }
        if let Some(c) = state.chain_cache.as_mut() {
            c.invalidate_file(job);
        }
        self.run(state, job, None, replication, persist)
    }

    /// RCMP recomputation run. Fails with
    /// [`rcmp_model::Error::NoLiveNodes`] on a fully-dead cluster.
    pub fn run_recompute(
        &self,
        state: &mut SimState,
        job: u32,
        spec: &RecomputeSpec,
        persist: bool,
    ) -> Result<SimJobReport> {
        self.run(state, job, Some(spec), 1, persist)
    }

    fn run(
        &self,
        state: &mut SimState,
        job: u32,
        recompute: Option<&RecomputeSpec>,
        replication: u32,
        persist: bool,
    ) -> Result<SimJobReport> {
        let hw = &self.hw;
        let wl = &self.wl;
        let input_file = job - 1;
        let block = wl.block_size.as_u64();
        let live = state.live_nodes();
        // A membership snapshot for this run's scheduling decisions —
        // mid-run transitions (none today) would only affect later runs,
        // matching the engine's snapshot-per-phase behaviour.
        let membership = state.membership().clone();
        let ctx = PolicyCtx::maybe(self.tracer.as_deref(), None);

        let mut report = SimJobReport {
            job,
            recompute: recompute.is_some(),
            ..SimJobReport::default()
        };

        // ---------------- mapper task set -------------------------------
        let blocks = state.file_blocks(input_file, block);
        let all_tasks: Vec<MapTaskSim> = blocks
            .into_iter()
            .map(|(pid, blk, bytes, holders)| MapTaskSim {
                pid,
                blk,
                bytes,
                holders,
            })
            .collect();
        let reuse = recompute.is_some_and(|r| r.reuse_map_outputs);
        let to_run: Vec<usize> = match recompute.and_then(|r| r.force_rerun_mappers) {
            Some(n) => {
                // Stride evenly across the input so the forced set is
                // spread over partitions (and their holders) the way
                // real invalidation is — taking a prefix would pile all
                // reads onto one partition's few replica holders.
                let total = all_tasks.len();
                let n = n.min(total);
                let mut picked: Vec<usize> = (0..n).map(|i| i * total / n.max(1)).collect();
                picked.dedup();
                picked
            }
            None => (0..all_tasks.len())
                .filter(|&i| {
                    let t = &all_tasks[i];
                    let v = state.partition_version(input_file, t.pid);
                    !(reuse && state.map_output_valid((job, t.pid, t.blk), v))
                })
                .collect(),
        };
        report.mappers_reused = all_tasks.len() - to_run.len();
        report.mappers_run = to_run.len();

        // ---------------- map phase -------------------------------------
        let mut map_phase = 0.0f64;
        let noncol = self.noncollocated;
        // Chain-cache affinity: which node holds each task's input
        // partition in memory. Consulted for *scheduling* only under the
        // `Stable` kernel (mirroring the engine tracker); consulted for
        // *reads* whenever the cache is on.
        let cache_src: Vec<Option<Node>> = to_run
            .iter()
            .map(|&i| {
                state
                    .cache_holder(input_file, all_tasks[i].pid)
                    .filter(|&h| state.is_alive(h) && !noncol)
            })
            .collect();
        let stable = self.placement == PlacementKernel::Stable;
        let waves = assign_map_waves_kernel(
            to_run.len(),
            &live,
            wl.slots.map,
            self.placement,
            &membership,
            |ti, n| !noncol && all_tasks[to_run[ti]].holders.first() == Some(&n),
            |ti, n| !noncol && all_tasks[to_run[ti]].holders.contains(&n),
            |ti| if stable { cache_src[ti] } else { None },
            ctx,
        )?;
        report.map_waves = waves.len() as u32;
        for wave in &waves {
            // Source per task: the chain-cache holder's memory when the
            // partition is cached; else own node if it holds a live
            // replica; else rotate over the live holders so concurrent
            // remote readers of one partition spread across its replicas.
            let assignments: Vec<(Node, &MapTaskSim, Node, bool)> = wave
                .iter()
                .map(|&(node, ti)| {
                    let t = &all_tasks[to_run[ti]];
                    if let Some(h) = cache_src[ti] {
                        return (node, t, h, true);
                    }
                    let src =
                        if !self.noncollocated && t.holders.contains(&node) && state.is_alive(node)
                        {
                            node
                        } else {
                            let live_holders: Vec<Node> = t
                                .holders
                                .iter()
                                .copied()
                                .filter(|&h| state.is_alive(h))
                                .collect();
                            assert!(
                                !live_holders.is_empty(),
                                "planner guarantees readable input"
                            );
                            live_holders[t.blk as usize % live_holders.len()]
                        };
                    (node, t, src, false)
                })
                .collect();
            // Per-node stream counts this wave. Collocated clusters
            // share one disk per node between input reads and map-output
            // writes; the non-collocated deployment has distinct storage
            // and compute tiers, so the two kinds of streams never
            // contend with each other. Cached reads come from memory and
            // never touch the source disk.
            let mut read_streams: BTreeMap<Node, usize> = BTreeMap::new();
            let mut write_streams: BTreeMap<Node, usize> = BTreeMap::new();
            let mut net_out: BTreeMap<Node, usize> = BTreeMap::new();
            for (node, _, src, from_cache) in &assignments {
                if !from_cache {
                    *read_streams.entry(*src).or_insert(0) += 1;
                }
                *write_streams.entry(*node).or_insert(0) += 1;
                if self.noncollocated || src != node {
                    *net_out.entry(*src).or_insert(0) += 1;
                }
            }
            let read_contention = |src: Node| {
                read_streams.get(&src).copied().unwrap_or(0)
                    + if self.noncollocated {
                        0
                    } else {
                        write_streams.get(&src).copied().unwrap_or(0)
                    }
            };
            let write_contention = |node: Node| {
                write_streams.get(&node).copied().unwrap_or(0)
                    + if self.noncollocated {
                        0
                    } else {
                        read_streams.get(&node).copied().unwrap_or(0)
                    }
            };
            let mut wave_tasks: Vec<WaveTask> = Vec::with_capacity(assignments.len());
            for (node, t, src, from_cache) in &assignments {
                let mut read_time = if *from_cache {
                    // Memory-resident partition: zero disk work, zero
                    // re-decode — the M3R fast path. A non-holder reader
                    // still crosses the network.
                    report.cache_hits += 1;
                    report.cache_read_bytes += t.bytes;
                    if src == node {
                        report.cache_hits_local += 1;
                    }
                    t.bytes as f64 / hw.mem_read_bw
                } else {
                    let read_bw = hw.disk_stream_bw(hw.disk_read_bw, read_contention(*src));
                    t.bytes as f64 / read_bw
                };
                if self.noncollocated || src != node {
                    let net_bw = hw.nic_stream_bw(net_out.get(src).copied().unwrap_or(1).max(1));
                    read_time = read_time.max(t.bytes as f64 / net_bw);
                    report.io.map_input_remote += t.bytes;
                } else {
                    report.io.map_input_local += t.bytes;
                }
                let cpu = t.bytes as f64 * hw.map_cpu_per_byte;
                let out_bytes = (t.bytes as f64 * wl.map_ratio) as u64;
                let write_bw = hw.disk_stream_bw(hw.disk_write_bw, write_contention(*node));
                let write_time = out_bytes as f64 / write_bw;
                let dur = hw.task_overhead + read_time + cpu + write_time;
                // A speculative duplicate could read from another live
                // replica, uncontended (it launches after the wave's
                // bulk finished). With single-replicated input there is
                // no alternate — the paper's point about replication
                // being a prerequisite for input-bound speculation.
                let alt = t
                    .holders
                    .iter()
                    .any(|&h| h != *src && state.is_alive(h))
                    .then(|| {
                        hw.task_overhead
                            + t.bytes as f64 / hw.disk_stream_bw(hw.disk_read_bw, 1)
                            + cpu
                            + write_time
                    });
                // Healthy baseline: a local task whose node disk serves
                // its own slots' reads + writes (2 streams per map slot)
                // — the progress rate Hadoop considers normal.
                let healthy_streams = (2 * wl.slots.map).max(1) as usize;
                let uncontended = hw.task_overhead
                    + t.bytes as f64 / hw.disk_stream_bw(hw.disk_read_bw, healthy_streams)
                    + cpu
                    + out_bytes as f64 / hw.disk_stream_bw(hw.disk_write_bw, healthy_streams);
                wave_tasks.push(WaveTask {
                    duration: dur,
                    uncontended,
                    alt_duration: alt,
                });
                let v = state.partition_version(input_file, t.pid);
                state.record_map_output(
                    (job, t.pid, t.blk),
                    MapOutputRec {
                        node: *node,
                        input_version: v,
                        bytes: out_bytes,
                    },
                );
            }
            let wave_time = match &self.speculation {
                Some(cfg) => {
                    let (effective, stats) = speculate_wave(cfg, &wave_tasks);
                    report.speculation.add(&stats);
                    report.mapper_durations.extend_from_slice(&effective);
                    effective.iter().copied().fold(0.0f64, f64::max)
                }
                None => {
                    let durs: Vec<f64> = wave_tasks.iter().map(|t| t.duration).collect();
                    report.mapper_durations.extend_from_slice(&durs);
                    durs.iter().copied().fold(0.0f64, f64::max)
                }
            };
            map_phase += wave_time;
        }

        // ---------------- reduce task set -------------------------------
        // (partition, split_index, fetch_bytes, out_bytes)
        let total_input: u64 = all_tasks.iter().map(|t| t.bytes).sum();
        let shuffle_total = (total_input as f64 * wl.map_ratio) as u64;
        let per_partition_shuffle = shuffle_total / wl.num_reducers as u64;
        let reduce_tasks: Vec<(u32, u32, u64, u64)> = match recompute {
            None => (0..wl.num_reducers)
                .map(|p| {
                    let f = per_partition_shuffle;
                    (p, 0, f, (f as f64 * wl.reduce_ratio) as u64)
                })
                .collect(),
            Some(spec) => {
                let split = spec.split_factor();
                spec.partitions
                    .iter()
                    .flat_map(|&p| {
                        (0..split).map(move |s| {
                            let f = per_partition_shuffle / split as u64;
                            (p.raw(), s, f, (f as f64 * wl.reduce_ratio) as u64)
                        })
                    })
                    .collect()
            }
        };
        report.reduce_tasks_run = reduce_tasks.len();

        // Map-output location profile for shuffle sourcing (valid
        // entries of this job, including reused ones).
        let mut mo_bytes: BTreeMap<Node, u64> = BTreeMap::new();
        let mut total_mo = 0u64;
        for ((j, _, _), rec) in state.map_outputs.range((job, 0, 0)..(job + 1, 0, 0)) {
            debug_assert_eq!(*j, job);
            *mo_bytes.entry(rec.node).or_insert(0) += rec.bytes;
            total_mo += rec.bytes;
        }
        let num_sources = state
            .map_outputs
            .range((job, 0, 0)..(job + 1, 0, 0))
            .count();

        // ---------------- reduce phase ----------------------------------
        let r_style = match recompute {
            None => ReduceAssignment::RoundRobinByPartition,
            Some(_) => ReduceAssignment::Balance,
        };
        let r_waves = assign_reduce_waves_kernel(
            reduce_tasks.len(),
            &live,
            wl.slots.reduce,
            r_style,
            self.placement,
            &membership,
            |t| reduce_tasks[t].0 as usize,
            ctx,
        )?;
        report.reduce_waves = r_waves.len() as u32;

        // Paper §V-D: the SLOW SHUFFLE delay applies per transfer,
        // serialized over the copier window (Hadoop fetches ~5 map
        // outputs at a time), so it scales with the number of sources.
        const PARALLEL_COPIES: f64 = 5.0;
        let slow_delay = hw.shuffle_transfer_delay * (num_sources as f64 / PARALLEL_COPIES).ceil();

        // Map outputs are served through a bounded copier window (~5
        // concurrent segment fetches per serving disk in Hadoop), so —
        // unlike the map phase's simultaneous whole-block reads, which
        // are the hot-spot mechanism — shuffle serving never degenerates
        // into an N-way seek storm.
        const COPIER_WINDOW: usize = 5;

        let mut reduce_phase = 0.0f64;
        let mut new_segments: BTreeMap<u32, Vec<Segment>> = BTreeMap::new();
        // Writer of each whole-partition reduce task: the chain cache
        // only admits whole reducer outputs (mirroring the engine's
        // `split.is_none()` staging guard).
        let whole_outputs = recompute.is_none_or(|r| r.split_factor() <= 1);
        let mut cache_writers: BTreeMap<u32, Node> = BTreeMap::new();
        for (w, wave) in r_waves.iter().enumerate() {
            // Wave-level serving load per source disk: every task
            // fetches `frac(m)` of its volume from node m.
            let wave_fetch_total: u64 = wave.iter().map(|&(_, ti)| reduce_tasks[ti].2).sum();
            let max_fetch: u64 = wave
                .iter()
                .map(|&(_, ti)| reduce_tasks[ti].2)
                .max()
                .unwrap_or(0);
            let serve_streams = wave.len().clamp(1, COPIER_WINDOW);
            let serve_bw = hw.disk_agg_bw(hw.disk_read_bw, serve_streams);
            let serve_time = mo_bytes
                .values()
                .map(|&mb| {
                    if total_mo == 0 {
                        0.0
                    } else {
                        (wave_fetch_total as f64 * mb as f64 / total_mo as f64) / serve_bw
                    }
                })
                .fold(0.0f64, f64::max);

            let mut wave_time = 0.0f64;
            let mut shuffle_max = 0.0f64;
            for &(node, ti) in wave {
                let (pid, _split, fetch, out_b) = reduce_tasks[ti];
                // This task's share of the serving bottleneck: smaller
                // (split) tasks drain proportionally sooner.
                let fetch_disk = if max_fetch == 0 {
                    0.0
                } else {
                    serve_time * fetch as f64 / max_fetch as f64
                };
                let local_bytes = if total_mo == 0 || self.noncollocated {
                    0
                } else {
                    (fetch as f64 * mo_bytes.get(&node).copied().unwrap_or(0) as f64
                        / total_mo as f64) as u64
                };
                let remote = fetch.saturating_sub(local_bytes);
                let tasks_on_node = wave.iter().filter(|(n, _)| *n == node).count();
                let fetch_net = remote as f64 / hw.nic_stream_bw(tasks_on_node);
                let fetch_vol = fetch_disk.max(fetch_net);
                let fetch_time = fetch_vol + slow_delay;
                report.io.shuffle_local += local_bytes;
                report.io.shuffle_remote += remote;

                // Sort + reduce CPU.
                let cpu = fetch as f64 * hw.reduce_cpu_per_byte;

                // Output write. With replication r, every node in a
                // balanced wave writes its own output *and* absorbs
                // incoming replicas from r-1 peers: r× the bytes over
                // r× the concurrent streams (the seek penalty makes
                // this super-linear — the REPL contention of Fig. 8a).
                let write_streams = tasks_on_node * replication as usize;
                let disk_bytes = out_b * replication as u64;
                let mut write_time =
                    disk_bytes as f64 / hw.disk_agg_bw(hw.disk_write_bw, write_streams);
                if self.noncollocated {
                    // The output crosses the network to the storage tier.
                    write_time = write_time
                        .max(out_b as f64 * replication as f64 / hw.nic_stream_bw(tasks_on_node));
                }
                if replication > 1 {
                    let repl_bytes = out_b * (replication as u64 - 1);
                    let net_time = repl_bytes as f64 / hw.nic_stream_bw(tasks_on_node);
                    write_time = write_time.max(net_time);
                    report.io.replication_written += repl_bytes;
                }
                report.io.output_written += out_b;

                let dur = hw.task_overhead + fetch_time + cpu + write_time;
                report.reducer_durations.push(dur);
                wave_time = wave_time.max(dur);
                shuffle_max = shuffle_max.max(fetch_vol + slow_delay);

                // Placement of the output.
                if whole_outputs {
                    cache_writers.insert(pid, node);
                }
                let seg_holders = self.place_output(state, node, replication, recompute);
                for holders in seg_holders {
                    new_segments
                        .entry(pid)
                        .or_default()
                        .push(Segment { holders, bytes: 0 });
                }
            }
            // Overlap rule: the first wave's shuffle (volume *and*
            // copier-delay rounds) proceeds while map waves still run;
            // at minimum the last map wave's data — one copier round
            // with its transfer-end delay — remains exposed after the
            // map phase ends. The effective first-wave shuffle is
            // therefore ≈ max(map_phase, shuffle), which is exactly why
            // under SLOW SHUFFLE "finishing the map phase faster does
            // not decrease the time necessary to complete the
            // network-bottlenecked shuffle" (§V-D). Later waves have no
            // map phase to hide behind and pay everything in full.
            if w == 0 && report.map_waves >= 1 {
                let min_exposed = shuffle_max / report.map_waves as f64 + hw.shuffle_transfer_delay;
                let credit = (shuffle_max - min_exposed).max(0.0).min(map_phase);
                reduce_phase += wave_time - credit;
            } else {
                reduce_phase += wave_time;
            }
        }

        // Commit output placements with real byte counts.
        let by_partition: BTreeMap<u32, u64> = reduce_tasks
            .iter()
            .map(|&(p, _, _, out_b)| (p, out_b))
            .fold(BTreeMap::new(), |mut m, (p, b)| {
                *m.entry(p).or_insert(0) += b;
                m
            });
        for (pid, mut segs) in new_segments {
            let total = by_partition.get(&pid).copied().unwrap_or(0);
            let n = segs.len().max(1) as u64;
            for s in &mut segs {
                s.bytes = total / n;
            }
            if let Some(first) = segs.first_mut() {
                first.bytes += total % n;
            }
            state.rewrite_partition(job, pid, segs);
        }
        // Write-behind done: admit this run's whole reducer outputs into
        // the chain cache (ascending partition order, the consuming run's
        // input file pinned — the same commit the engine tracker performs
        // at successful job completion).
        if let Some(cache) = state.chain_cache.as_mut() {
            for (&pid, &node) in &cache_writers {
                let bytes = by_partition.get(&pid).copied().unwrap_or(0);
                cache.stage(job, pid, node, bytes);
            }
            cache.commit(job, Some(input_file));
        }

        if !persist {
            state.clear_job_outputs(job);
        }

        report.duration = hw.job_overhead + map_phase + reduce_phase;
        Ok(report)
    }

    /// Output placement for one reduce task: writer-local (plus
    /// replicas), or scattered under the spread-output mitigation.
    /// Returns one holder-list per segment the task writes.
    fn place_output(
        &self,
        state: &SimState,
        writer: Node,
        replication: u32,
        recompute: Option<&RecomputeSpec>,
    ) -> Vec<Vec<Node>> {
        let live = state.live_nodes();
        if recompute.is_some_and(|r| r.spread_output) {
            // Scatter the task's blocks round-robin over all live nodes.
            return live.iter().map(|&n| vec![n]).collect();
        }
        let mut holders = vec![writer];
        let start = live.iter().position(|&n| n == writer).unwrap_or(0);
        let mut i = 1usize;
        while holders.len() < replication as usize && i <= live.len() {
            let cand = live[(start + i) % live.len()];
            if !holders.contains(&cand) {
                holders.push(cand);
            }
            i += 1;
        }
        vec![holders]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::{ByteSize, SlotConfig};

    fn small_wl(nodes: u32) -> WorkloadCfg {
        WorkloadCfg {
            nodes,
            slots: SlotConfig::ONE_ONE,
            jobs: 3,
            per_node_input: ByteSize::mib(512),
            block_size: ByteSize::mib(128),
            num_reducers: nodes,
            map_ratio: 1.0,
            reduce_ratio: 1.0,
            input_replication: 3,
        }
    }

    fn sim(nodes: u32) -> (JobSim, SimState) {
        let wl = small_wl(nodes);
        let state = SimState::new(&wl);
        (JobSim::new(HwProfile::stic(), wl), state)
    }

    #[test]
    fn full_run_counts_match_model() {
        let (js, mut st) = sim(4);
        let r = js.run_full(&mut st, 1, 1, true).unwrap();
        assert_eq!(r.mappers_run, 16); // 4 blocks × 4 nodes
        assert_eq!(r.mappers_reused, 0);
        assert_eq!(r.reduce_tasks_run, 4);
        assert_eq!(r.map_waves, 4);
        assert_eq!(r.reduce_waves, 1);
        assert!(r.duration > 0.0);
        // 1:1 ratio volume conservation.
        assert_eq!(
            r.io.map_input_local + r.io.map_input_remote,
            ByteSize::mib(2048).as_u64()
        );
        // Output file placed.
        assert!(st.files[&1].partitions.iter().all(|p| p.is_written()));
    }

    #[test]
    fn replication_increases_duration_and_volume() {
        let (js, mut st1) = sim(4);
        let t1 = js.run_full(&mut st1, 1, 1, true).unwrap();
        let (js3, mut st3) = sim(4);
        let t3 = js3.run_full(&mut st3, 1, 3, true).unwrap();
        assert!(
            t3.duration > t1.duration * 1.2,
            "{} vs {}",
            t3.duration,
            t1.duration
        );
        assert_eq!(t1.io.replication_written, 0);
        assert!(t3.io.replication_written > 0);
    }

    #[test]
    fn initial_mappers_are_mostly_local() {
        // With 3 replicas on 4 nodes the greedy balanced scheduler gets
        // most (not all) tasks local — same policy as the real engine.
        let (js, mut st) = sim(4);
        let r = js.run_full(&mut st, 1, 1, true).unwrap();
        let total = r.io.map_input_local + r.io.map_input_remote;
        assert!(
            r.io.map_input_local * 2 > total,
            "expected mostly-local reads: {:?}",
            r.io
        );
    }

    #[test]
    fn recompute_reuses_persisted_outputs() {
        let (js, mut st) = sim(4);
        js.run_full(&mut st, 1, 1, true).unwrap();
        js.run_full(&mut st, 2, 1, true).unwrap();
        // Lose node 3: its partition of out/1 and its map outputs die.
        st.fail_node(3);
        let lost = st.files[&1].lost_partitions(&st);
        assert!(!lost.is_empty());
        let spec = RecomputeSpec::new(lost.iter().copied(), 1);
        let r = js.run_recompute(&mut st, 1, &spec, true).unwrap();
        assert!(r.mappers_reused > 0, "survivor outputs reused");
        assert!(r.mappers_run < 16, "only the dead node's mappers re-run");
        assert_eq!(r.reduce_tasks_run, lost.len());
        assert!(st.files[&1].lost_partitions(&st).is_empty(), "regenerated");
    }

    #[test]
    fn split_recompute_uses_more_smaller_tasks() {
        let (js, mut st) = sim(6);
        js.run_full(&mut st, 1, 1, true).unwrap();
        st.fail_node(5);
        let lost: Vec<u32> = st.files[&1].lost_partitions(&st).into_iter().collect();
        assert!(!lost.is_empty());

        let whole = js
            .clone()
            .run_recompute(
                &mut st.clone(),
                1,
                &RecomputeSpec::new(lost.clone(), 1),
                true,
            )
            .unwrap();
        let split = js
            .run_recompute(&mut st, 1, &RecomputeSpec::new(lost.clone(), 5), true)
            .unwrap();
        assert_eq!(split.reduce_tasks_run, whole.reduce_tasks_run * 5);
        // Splitting speeds up the recomputation (Fig. 11).
        assert!(
            split.duration < whole.duration,
            "split {} !< whole {}",
            split.duration,
            whole.duration
        );
        // The regenerated partition is spread over several nodes.
        let p = &st.files[&1].partitions[lost[0] as usize];
        assert_eq!(p.segments.len(), 5);
    }

    /// The Fig. 6 scenario: after an unsplit recomputation of job 1's
    /// lost partition (one node Z holds all of it), the *recomputation
    /// of job 2* re-runs exactly the mappers that died with the failed
    /// node — and they all converge on Z in one wave.
    #[test]
    fn hotspot_slows_recomputed_mappers_and_split_mitigates() {
        let run_scenario = |split: u32| -> f64 {
            let (js, mut st) = sim(6);
            js.run_full(&mut st, 1, 1, true).unwrap();
            js.run_full(&mut st, 2, 1, true).unwrap();
            st.fail_node(5);
            let lost1 = st.files[&1].lost_partitions(&st);
            let lost2 = st.files[&2].lost_partitions(&st);
            assert!(!lost1.is_empty() && !lost2.is_empty());
            js.run_recompute(
                &mut st,
                1,
                &RecomputeSpec::new(lost1.iter().copied(), split),
                true,
            )
            .unwrap();
            let r2 = js
                .run_recompute(
                    &mut st,
                    2,
                    &RecomputeSpec::new(lost2.iter().copied(), split),
                    true,
                )
                .unwrap();
            assert!(r2.mappers_run > 0, "dead node's mappers must re-run");
            // Median mapper duration of the recomputation run.
            let mut d = r2.mapper_durations.clone();
            d.sort_by(f64::total_cmp);
            d[d.len() / 2]
        };
        let no_split_median = run_scenario(1);
        let split_median = run_scenario(5);
        assert!(
            no_split_median > split_median * 1.2,
            "splitting must mitigate the hot-spot: {no_split_median} vs {split_median}"
        );
    }

    #[test]
    fn slow_shuffle_dominates() {
        let wl = small_wl(4);
        let state = SimState::new(&wl);
        let fast = JobSim::new(HwProfile::stic(), wl.clone());
        let slow = JobSim::new(HwProfile::stic().with_slow_shuffle(), wl);
        let tf = fast.run_full(&mut state.clone(), 1, 1, true).unwrap();
        let ts = slow.run_full(&mut state.clone(), 1, 1, true).unwrap();
        // The copier delay partially overlaps the map phase; the exposed
        // tail still lengthens the job noticeably.
        assert!(
            ts.duration > tf.duration + 10.0,
            "{} vs {}",
            ts.duration,
            tf.duration
        );
    }

    #[test]
    fn spread_output_scatters_partition() {
        let (js, mut st) = sim(6);
        js.run_full(&mut st, 1, 1, true).unwrap();
        st.fail_node(5);
        let lost = st.files[&1].lost_partitions(&st);
        let mut spec = RecomputeSpec::new(lost.iter().copied(), 1);
        spec.spread_output = true;
        js.run_recompute(&mut st, 1, &spec, true).unwrap();
        let p = &st.files[&1].partitions[*lost.first().unwrap() as usize];
        assert!(p.segments.len() > 1, "output scattered over nodes");
    }

    #[test]
    fn no_persist_clears_outputs() {
        let (js, mut st) = sim(4);
        js.run_full(&mut st, 1, 1, false).unwrap();
        assert_eq!(st.persisted_bytes(), 0);
    }
}
