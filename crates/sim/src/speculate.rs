//! Speculative execution (§II, §III-A).
//!
//! Hadoop's task-level straggler defence: when a task runs much slower
//! than its wave's median, a duplicate is launched elsewhere and the
//! first finisher wins. The paper is skeptical of its value —
//! "studies show that up to 90% of speculatively executed tasks provide
//! no benefits" (§III-A) — and notes replication only helps speculation
//! when the slowness comes from *reading input* (a duplicate can use a
//! different replica).
//!
//! This module models exactly that mechanism for the simulator's map
//! waves: a duplicate launched at the median completion time, reading
//! from the least-loaded *other* replica; it wins only if
//! `median + duplicate_read` beats the straggler. The statistics let
//! the harness reproduce the paper's "mostly futile" observation and
//! its corollary: with single-replicated data (RCMP's regime) there is
//! no alternate replica, so input-bound speculation cannot win at all.

use serde::{Deserialize, Serialize};

/// Speculation policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeculationCfg {
    /// A task is a straggler if its duration exceeds
    /// `slow_factor ×` its expected uncontended duration. (Hadoop
    /// detects stragglers by progress *rate*, which is exactly a
    /// comparison against the rate the task would sustain uncontended —
    /// a wave-median criterion would be blind to the uniformly-slow
    /// hot-spot waves of §IV-B2, which Hadoop does speculate on.)
    pub slow_factor: f64,
}

impl Default for SpeculationCfg {
    fn default() -> Self {
        Self { slow_factor: 1.5 }
    }
}

/// Outcome of speculating on one wave.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SpeculationStats {
    /// Duplicates launched.
    pub speculated: usize,
    /// Duplicates that finished before their original.
    pub wins: usize,
    /// Wall-clock seconds saved on the wave (max-duration reduction).
    pub saved: f64,
}

impl SpeculationStats {
    pub fn add(&mut self, other: &SpeculationStats) {
        self.speculated += other.speculated;
        self.wins += other.wins;
        self.saved += other.saved;
    }

    /// Fraction of speculations that provided no benefit (the paper's
    /// ~90% claim).
    pub fn futile_fraction(&self) -> f64 {
        if self.speculated == 0 {
            0.0
        } else {
            1.0 - self.wins as f64 / self.speculated as f64
        }
    }
}

/// One wave task as the speculator sees it.
#[derive(Clone, Copy, Debug)]
pub struct WaveTask {
    /// Duration without speculation.
    pub duration: f64,
    /// The duration the task would have uncontended (full disk stream,
    /// no sharing) — the progress-rate baseline.
    pub uncontended: f64,
    /// Read time of a duplicate on the best *alternate* replica
    /// (`None` when no alternate replica exists — single-replicated
    /// input, RCMP's regime — or the slowness is not input-bound).
    pub alt_duration: Option<f64>,
}

/// Applies speculation to one wave: returns the effective per-task
/// durations and the statistics.
pub fn speculate_wave(cfg: &SpeculationCfg, tasks: &[WaveTask]) -> (Vec<f64>, SpeculationStats) {
    let mut stats = SpeculationStats::default();
    if tasks.is_empty() {
        return (Vec::new(), stats);
    }
    let mut sorted: Vec<f64> = tasks.iter().map(|t| t.duration).collect();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let before_max = sorted.last().copied().unwrap_or(0.0);

    let effective: Vec<f64> = tasks
        .iter()
        .map(|t| {
            if t.duration <= t.uncontended * cfg.slow_factor {
                return t.duration;
            }
            stats.speculated += 1;
            // The duplicate starts once the straggler is detected; the
            // earliest meaningful moment is when typical (median) tasks
            // finish and the straggler's lag is evident.
            let detect_at = median.min(t.duration);
            match t.alt_duration {
                Some(alt) if detect_at + alt < t.duration => {
                    stats.wins += 1;
                    detect_at + alt
                }
                _ => t.duration,
            }
        })
        .collect();
    let after_max = effective.iter().copied().fold(0.0f64, f64::max);
    stats.saved = (before_max - after_max).max(0.0);
    (effective, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(duration: f64, uncontended: f64, alt: Option<f64>) -> WaveTask {
        WaveTask {
            duration,
            uncontended,
            alt_duration: alt,
        }
    }

    #[test]
    fn no_stragglers_no_speculation() {
        let tasks = vec![task(10.0, 9.0, Some(10.0)); 5];
        let (eff, stats) = speculate_wave(&SpeculationCfg::default(), &tasks);
        assert_eq!(stats.speculated, 0);
        assert_eq!(eff, vec![10.0; 5]);
    }

    #[test]
    fn input_bound_straggler_rescued_by_alternate_replica() {
        let mut tasks = vec![task(10.0, 10.0, Some(10.0)); 4];
        tasks.push(task(60.0, 10.0, Some(12.0))); // slow read; fast elsewhere
        let (eff, stats) = speculate_wave(&SpeculationCfg::default(), &tasks);
        assert_eq!(stats.speculated, 1);
        assert_eq!(stats.wins, 1);
        // Effective: detected at the median (10) + alt read (12).
        assert!((eff[4] - 22.0).abs() < 1e-9);
        assert!((stats.saved - 38.0).abs() < 1e-9);
    }

    #[test]
    fn uniformly_slow_wave_still_detected() {
        // The §IV-B2 hot-spot: every task in the wave reads the same
        // disk and is ~4x its uncontended time. A wave-median criterion
        // would see nothing; the progress-rate criterion speculates.
        let tasks = vec![task(40.0, 10.0, None); 4];
        let (_, stats) = speculate_wave(&SpeculationCfg::default(), &tasks);
        assert_eq!(stats.speculated, 4);
        assert_eq!(stats.wins, 0, "no alternate replica → futile");
    }

    #[test]
    fn single_replica_speculation_is_futile() {
        // RCMP's regime: no alternate replica → the duplicate re-reads
        // the same contended source and never wins.
        let mut tasks = vec![task(10.0, 10.0, None); 4];
        tasks.push(task(60.0, 10.0, None));
        let (eff, stats) = speculate_wave(&SpeculationCfg::default(), &tasks);
        assert_eq!(stats.speculated, 1);
        assert_eq!(stats.wins, 0);
        assert_eq!(stats.futile_fraction(), 1.0);
        assert!((eff[4] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_straggler_not_rescued() {
        // Alternate replica exists but the duplicate is just as slow
        // (the slowness is not input-bound): futile speculation.
        let mut tasks = vec![task(10.0, 10.0, Some(55.0)); 4];
        tasks.push(task(60.0, 10.0, Some(55.0)));
        let (_, stats) = speculate_wave(&SpeculationCfg::default(), &tasks);
        assert_eq!(stats.speculated, 1);
        assert_eq!(stats.wins, 0);
    }

    #[test]
    fn stats_aggregate() {
        let mut a = SpeculationStats {
            speculated: 8,
            wins: 1,
            saved: 5.0,
        };
        a.add(&SpeculationStats {
            speculated: 2,
            wins: 0,
            saved: 0.0,
        });
        assert_eq!(a.speculated, 10);
        assert!((a.futile_fraction() - 0.9).abs() < 1e-9, "the paper's 90%");
    }

    #[test]
    fn empty_wave() {
        let (eff, stats) = speculate_wave(&SpeculationCfg::default(), &[]);
        assert!(eff.is_empty());
        assert_eq!(stats.speculated, 0);
    }
}
