//! §II / §III-A: the non-collocated deployment and the (ir)relevance of
//! data locality.
//!
//! * "Data locality is not even applicable to non-collocated
//!   environments. All transfers are remote in this case."
//! * "Data locality is inconsequential when the network is not the
//!   bottleneck." — with a 10 GbE fabric faster than the disks, moving
//!   every read across the network barely changes job time.
//! * Conversely, on a heavily oversubscribed network the non-collocated
//!   penalty is real — locality matters exactly when the paper says it
//!   does.

use rcmp_model::{ByteSize, SlotConfig};
use rcmp_sim::{HwProfile, JobSim, SimState, WorkloadCfg};

fn wl() -> WorkloadCfg {
    WorkloadCfg {
        nodes: 8,
        slots: SlotConfig::ONE_ONE,
        jobs: 1,
        per_node_input: ByteSize::mib(512),
        block_size: ByteSize::mib(128),
        num_reducers: 8,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: 3,
    }
}

fn run(hw: HwProfile, noncollocated: bool) -> rcmp_sim::SimJobReport {
    let w = wl();
    let mut js = JobSim::new(hw, w.clone());
    if noncollocated {
        js = js.noncollocated();
    }
    let mut st = SimState::new(&w);
    js.run_full(&mut st, 1, 1, true).unwrap()
}

#[test]
fn all_transfers_remote_in_noncollocated_mode() {
    let r = run(HwProfile::stic(), true);
    assert_eq!(r.io.map_input_local, 0, "no local reads exist");
    assert_eq!(r.io.shuffle_local, 0, "no local shuffle exists");
    assert!(r.io.map_input_remote > 0);
}

#[test]
fn locality_inconsequential_on_fast_network() {
    // 10 GbE, disks ~100 MB/s: the network is not the bottleneck, so
    // giving up locality costs little (§III-A).
    let collocated = run(HwProfile::stic(), false);
    let noncol = run(HwProfile::stic(), true);
    let penalty = noncol.duration / collocated.duration;
    assert!(
        penalty < 1.25,
        "fast network: non-collocated penalty should be small, got {penalty:.2}"
    );
}

#[test]
fn locality_matters_on_oversubscribed_network() {
    // Throttle the fabric to ~1% of 10 GbE (≈ 11 MB/s per stream, an
    // order of magnitude below the disks): remote reads and writes
    // become the bottleneck and non-collocation hurts badly.
    let mut slow_net = HwProfile::stic();
    slow_net.fabric_factor = 0.01;
    let collocated = run(slow_net.clone(), false);
    let noncol = run(slow_net, true);
    let penalty = noncol.duration / collocated.duration;
    assert!(
        penalty > 1.3,
        "slow network: non-collocated penalty should be large, got {penalty:.2}"
    );
}

#[test]
fn recomputation_works_noncollocated() {
    // §II: "our contributions directly apply also to the non-collocated
    // case" — recomputation with splitting still functions and helps.
    use rcmp_sim::jobsim::RecomputeSpec;
    let w = wl();
    let js = JobSim::new(HwProfile::stic(), w.clone()).noncollocated();
    let mut st = SimState::new(&w);
    let init = js.run_full(&mut st, 1, 1, true).unwrap();
    st.fail_node(7);
    let lost = st.files[&1].lost_partitions(&st);
    assert!(!lost.is_empty());
    let whole = js
        .run_recompute(
            &mut st.clone(),
            1,
            &RecomputeSpec::new(lost.iter().copied(), 1),
            true,
        )
        .unwrap();
    let split = js
        .run_recompute(
            &mut st,
            1,
            &RecomputeSpec::new(lost.iter().copied(), 7),
            true,
        )
        .unwrap();
    assert!(whole.duration < init.duration, "recompute beats rerun");
    assert!(split.duration <= whole.duration, "splitting still helps");
}
