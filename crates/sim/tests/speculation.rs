//! §III-A reproduced: the limits of speculative execution.
//!
//! * With triple-replicated, balanced input, hardly anything straggles,
//!   so speculation rarely fires and mostly provides no benefit.
//! * With single-replicated intermediate data (RCMP's regime), an
//!   input-bound straggler has no alternate replica to read — the
//!   paper's point that replication's speculation benefit "only applies
//!   when the slowness is caused by inefficiencies in reading input".
//! * Under the post-failure hot-spot, speculation *with* replicas can
//!   rescue stragglers — but splitting removes the stragglers at the
//!   source, which is RCMP's answer.

use rcmp_model::{ByteSize, SlotConfig};
use rcmp_sim::jobsim::RecomputeSpec;
use rcmp_sim::{HwProfile, JobSim, SimState, SpeculationCfg, WorkloadCfg};

fn wl(nodes: u32, replication: u32) -> WorkloadCfg {
    WorkloadCfg {
        nodes,
        slots: SlotConfig::ONE_ONE,
        jobs: 2,
        per_node_input: ByteSize::mib(512),
        block_size: ByteSize::mib(128),
        num_reducers: nodes,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: replication,
    }
}

#[test]
fn balanced_local_runs_rarely_speculate() {
    let w = wl(6, 3);
    let js = JobSim::new(HwProfile::stic(), w.clone()).with_speculation(SpeculationCfg::default());
    let mut st = SimState::new(&w);
    let r = js.run_full(&mut st, 1, 1, true).unwrap();
    // Balanced local reads: no 1.5x-median stragglers at all.
    assert_eq!(
        r.speculation.speculated, 0,
        "balanced run should not straggle: {:?}",
        r.speculation
    );
}

#[test]
fn hotspot_stragglers_speculate_and_replicas_decide_the_benefit() {
    // Create the Fig.-6 hot-spot: node dies, its partition is
    // regenerated unsplit on one node (single replica), then the next
    // job's invalidated mappers all read that node.
    let run = |spec_on: bool| {
        let w = wl(6, 3);
        let mut js = JobSim::new(HwProfile::stic(), w.clone());
        if spec_on {
            js = js.with_speculation(SpeculationCfg::default());
        }
        let mut st = SimState::new(&w);
        js.run_full(&mut st, 1, 1, true).unwrap();
        js.run_full(&mut st, 2, 1, true).unwrap();
        st.fail_node(5);
        let lost1 = st.files[&1].lost_partitions(&st);
        let lost2 = st.files[&2].lost_partitions(&st);
        js.run_recompute(
            &mut st,
            1,
            &RecomputeSpec::new(lost1.iter().copied(), 1),
            true,
        )
        .unwrap();
        js.run_recompute(
            &mut st,
            2,
            &RecomputeSpec::new(lost2.iter().copied(), 1),
            true,
        )
        .unwrap()
    };
    let plain = run(false);
    let spec = run(true);
    // The hot-spot produces stragglers; speculation fires…
    assert!(
        spec.speculation.speculated > 0,
        "hot-spot must trigger speculation: {:?}",
        spec.speculation
    );
    // …but the contended data is the regenerated partition with ONE
    // replica (RCMP writes intermediates single-replicated): duplicates
    // have nowhere better to read from, so speculation cannot beat the
    // original — §III-A's "may succeed even in a single-replicated
    // system" applies only to compute-bound slowness.
    assert_eq!(
        spec.speculation.wins, 0,
        "single-replicated hot-spot reads cannot be rescued: {:?}",
        spec.speculation
    );
    assert!(
        (spec.duration - plain.duration).abs() < 1e-6,
        "futile speculation does not change the job time"
    );
}

#[test]
fn replicated_input_stragglers_can_be_rescued() {
    // Force a contended read of *replicated* input: kill a node so its
    // primary input blocks are re-read remotely from scattered replicas
    // while everything else reads locally — mild stragglers with
    // alternates available.
    let w = wl(6, 3);
    let js = JobSim::new(HwProfile::stic(), w.clone())
        .with_speculation(SpeculationCfg { slow_factor: 1.2 });
    let mut st = SimState::new(&w);
    st.fail_node(5);
    let r = js.run_full(&mut st, 1, 1, true).unwrap();
    if r.speculation.speculated > 0 {
        // Whenever speculation fires here, alternates exist (input is
        // triple-replicated), so at least the accounting is consistent.
        assert!(r.speculation.wins <= r.speculation.speculated);
        assert!(r.speculation.futile_fraction() <= 1.0);
    }
    // Either way the run completes with every mapper accounted for
    // (24 blocks over 5 survivors → an uneven final wave).
    assert_eq!(r.mappers_run, 24);
    assert_eq!(r.mapper_durations.len(), 24);
}
