//! Real-engine behavioural tests: slot semantics (§II), the observable
//! hot-spot of Fig. 6, and recovery with unsplittable jobs.

use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::{
    Cluster, JobRun, JobTracker, NoFailures, RecomputeInstructions, ScriptedInjector, TriggerPoint,
};
use rcmp::model::{
    ByteSize, ClusterConfig, ExecutorConfig, NodeId, PlacementKernel, SlotConfig, TaskId,
};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn cluster(nodes: u32, slots: SlotConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        slots,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        seed: 3,
        // CI reruns this binary with RCMP_EXECUTOR=async (executor matrix).
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: PlacementKernel::from_env_or_default(),
        chain_cache: Default::default(),
    })
}

/// "A job runs in multiple waves when the number of tasks is greater
/// than the number of slots" (§II): doubling slots halves map waves and
/// never exceeds the per-node concurrency bound.
#[test]
fn slots_bound_concurrency_and_set_wave_counts() {
    let run = |slots: SlotConfig| {
        let cl = cluster(4, slots);
        generate_input(cl.dfs(), &DataGenConfig::test("input", 4, 33_000)).unwrap();
        let chain = ChainBuilder::new(1, 4).build();
        let tracker = JobTracker::new(&cl, Arc::new(NoFailures));
        tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap()
    };
    let one = run(SlotConfig::ONE_ONE);
    let two = run(SlotConfig::TWO_TWO);
    assert!(one.map_waves > 1, "enough tasks for multiple waves");
    assert_eq!(two.map_waves, one.map_waves.div_ceil(2));

    // No (node, wave) pair ever holds more mappers than slots.
    for (report, cap) in [(&one, 1usize), (&two, 2)] {
        let mut per = std::collections::HashMap::new();
        for t in report.map_records() {
            *per.entry((t.node, t.wave)).or_insert(0usize) += 1;
        }
        assert!(
            per.values().all(|&c| c <= cap),
            "slot bound violated at cap {cap}"
        );
    }
}

/// Fig. 6 on the real engine: after an unsplit recomputation of job 1's
/// lost partition onto one node Z, the recomputation of job 2 re-runs
/// the dead node's mappers — and they all pull their input from Z
/// concurrently (observable via the DFS access counters).
#[test]
fn hotspot_concentrates_reads_on_the_recomputing_node() {
    let cl = cluster(6, SlotConfig::ONE_ONE);
    generate_input(cl.dfs(), &DataGenConfig::test("input", 6, 40_000)).unwrap();
    let chain = ChainBuilder::new(2, 6).build();
    let tracker = JobTracker::new(&cl, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    tracker.run(&JobRun::full(chain.job(2).clone()), 2).unwrap();

    cl.fail_node(NodeId(5));
    let lost1 = cl.dfs().file_meta("out/1").unwrap().lost_partitions();
    let lost2 = cl.dfs().file_meta("out/2").unwrap().lost_partitions();
    assert!(!lost1.is_empty() && !lost2.is_empty());

    // Regenerate job 1's partition unsplit: all of it lands on one node.
    tracker
        .run(
            &JobRun::recompute(
                chain.job(1).clone(),
                RecomputeInstructions::new(lost1.iter().copied(), None),
            ),
            3,
        )
        .unwrap();
    let meta = cl.dfs().file_meta("out/1").unwrap();
    let hot_partition = &meta.partitions[lost1[0].index()];
    assert_eq!(hot_partition.segments.len(), 1, "unsplit: one segment");
    let z = hot_partition.segments[0].writer;

    // Recompute job 2: the re-run mappers' input reads concentrate on Z.
    let report = tracker
        .run(
            &JobRun::recompute(
                chain.job(2).clone(),
                RecomputeInstructions::new(lost2.iter().copied(), None),
            ),
            4,
        )
        .unwrap();
    assert!(report.map_tasks_run > 0);
    let sources = report.input_sources();
    let from_z = sources.get(&z).copied().unwrap_or(0);
    let total: usize = sources.values().sum();
    assert!(
        from_z * 2 >= total,
        "most recomputed mapper reads should hit {z}: {sources:?}"
    );
    // And they ran on several distinct nodes in few waves — the §IV-B2
    // concurrency that makes the concentration a hot-spot.
    let nodes_used: std::collections::HashSet<NodeId> =
        report.map_records().map(|t| t.node).collect();
    assert!(nodes_used.len() > 1, "mappers spread over survivors");
}

/// A chain containing an unsplittable job still recovers (the planner
/// simply never splits its reducers), and splitting elsewhere is
/// unaffected.
#[test]
fn unsplittable_jobs_recover_without_splitting() {
    let cl = cluster(5, SlotConfig::ONE_ONE);
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 20_000)).unwrap();
    // splittable(false) marks every job in the chain unsplittable.
    let chain = ChainBuilder::new(3, 5).splittable(false).build();
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(1),
    ));
    // Even with a split-requesting strategy, recovery must fall back to
    // whole reducers rather than erroring out.
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert!(outcome.events.recompute_runs() > 0);
    for run in &outcome.runs {
        for t in run.reduce_records() {
            if let TaskId::Reduce(rt) = t.id {
                assert!(!rt.is_split(), "no split tasks on unsplittable jobs");
            }
        }
    }
}
