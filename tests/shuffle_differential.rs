//! Differential tests for the shuffle data-path overhaul.
//!
//! The streaming merge, the map-side combiner and the sharded block
//! stores are all *performance* changes; the contract is that none of
//! them is observable in the output. Each test here runs the new path
//! against its kept-alive oracle — the legacy collect-all-then-sort
//! shuffle, the combiner-less job, the single-lock store — and demands
//! byte-identical digests (and, where the accounting is deterministic,
//! identical I/O numbers).
//!
//! The whole binary honours `RCMP_EXECUTOR`, so the CI executor matrix
//! re-runs these differentials under the threaded, `async` and
//! `async:2` backends.

use proptest::prelude::*;
use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::{Cluster, JobRun, JobTracker, NoFailures, RandomizedInjector};
use rcmp::model::{ByteSize, ClusterConfig, Error, ExecutorConfig, ShuffleConfig, SlotConfig};
use rcmp::obs::SnapshotValue;
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, AggBuilder, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 4;

fn cluster(seed: u64, shuffle: ShuffleConfig, executor: ExecutorConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::TWO_TWO,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        seed,
        executor,
        shuffle,
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
    })
}

/// Runs one chain job and returns its report plus the output digest.
fn chain_run(
    seed: u64,
    records: u64,
    shuffle: ShuffleConfig,
) -> (rcmp::engine::JobReport, rcmp::workloads::OutputDigest) {
    let cl = cluster(seed, shuffle, ExecutorConfig::from_env_or_default());
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, records)).unwrap();
    let chain = ChainBuilder::new(1, NODES * 2).build();
    let tracker = JobTracker::new(&cl, Arc::new(NoFailures));
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    (report, digest)
}

/// Runs the aggregation job, returning its report plus the digest.
fn agg_run(
    seed: u64,
    records: u64,
    combine: bool,
    shuffle: ShuffleConfig,
) -> (rcmp::engine::JobReport, rcmp::workloads::OutputDigest) {
    let cl = cluster(seed, shuffle, ExecutorConfig::from_env_or_default());
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, records)).unwrap();
    let spec = AggBuilder::new(NODES * 2, 16).combine(combine).build();
    let tracker = JobTracker::new(&cl, Arc::new(NoFailures));
    let report = tracker.run(&JobRun::full(spec.clone()), 1).unwrap();
    let digest = digest_file(cl.dfs(), &spec.output, cl.live_nodes()[0])
        .unwrap()
        .0;
    (report, digest)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// The streaming k-way merge against the legacy sort-all oracle:
    /// same cluster seed, same input — byte-identical output digest,
    /// identical schedule shape, identical I/O accounting (down to the
    /// shuffle byte counts, which the merge path recomputes from the
    /// bucket indexes).
    #[test]
    fn streaming_merge_matches_legacy_oracle(
        seed in 1u64..100_000,
        records in 5_000u64..25_000,
    ) {
        let (legacy, legacy_digest) = chain_run(seed, records, ShuffleConfig::legacy());
        let (streaming, streaming_digest) = chain_run(seed, records, ShuffleConfig::default());
        prop_assert_eq!(legacy_digest, streaming_digest, "output diverged at seed {}", seed);
        prop_assert_eq!(legacy.io, streaming.io, "I/O accounting diverged at seed {}", seed);
        prop_assert_eq!(legacy.map_waves, streaming.map_waves);
        prop_assert_eq!(legacy.reduce_waves, streaming.reduce_waves);
    }

    /// Combiner correctness: the aggregation job's output digest is
    /// byte-identical with the combiner on or off (its partial
    /// aggregates share the reducer's wire format and its merge is
    /// associative + commutative), while the shuffle moves strictly —
    /// in fact drastically — fewer bytes.
    #[test]
    fn combiner_preserves_output_and_shrinks_shuffle(
        seed in 1u64..100_000,
        records in 40_000u64..100_000,
    ) {
        let (raw, raw_digest) = agg_run(seed, records, false, ShuffleConfig::default());
        let (combined, combined_digest) = agg_run(seed, records, true, ShuffleConfig::default());
        prop_assert_eq!(raw_digest, combined_digest, "combiner changed the output at seed {}", seed);
        let raw_shuffle = raw.io.shuffle_local + raw.io.shuffle_remote;
        let combined_shuffle = combined.io.shuffle_local + combined.io.shuffle_remote;
        prop_assert!(
            combined_shuffle * 2 < raw_shuffle,
            "combiner should at least halve shuffle volume: {} vs {}",
            combined_shuffle,
            raw_shuffle
        );
        // And combining must also agree with the legacy oracle.
        let (_, legacy_digest) = agg_run(seed, records, true, ShuffleConfig::legacy());
        prop_assert_eq!(legacy_digest, combined_digest);
    }
}

/// Sharded block stores against the single-lock oracle, under chaos.
///
/// Runs a chain through randomized fault schedules twice — once with
/// `store_shards: 1` and once with 8 — and demands identical outcomes,
/// identical digests on convergence, and *exactly* equal
/// [`rcmp::dfs::NodeAccessStats`] on every node. The serial reactor
/// (`async:1`) is pinned here on purpose: `max_concurrent_reads` is a
/// high-water mark over wall-clock overlapping reads, so it is only
/// deterministic when one worker drains the waves serially.
#[test]
fn sharded_store_accounting_matches_single_lock_under_chaos() {
    for chaos_seed in [7u64, 1312, 90_210] {
        let mut runs = Vec::new();
        for shards in [1u32, 8] {
            let shuffle = ShuffleConfig {
                store_shards: shards,
                ..ShuffleConfig::default()
            };
            let cl = cluster(17, shuffle, ExecutorConfig::async_workers(1));
            generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 10_000)).unwrap();
            let chain = ChainBuilder::new(2, NODES).build();
            let injector = Arc::new(
                RandomizedInjector::new(chaos_seed, NODES)
                    .kill_probability(0.05)
                    .fault_probability(0.2)
                    .max_kills(1)
                    .max_other_faults(4),
            );
            let outcome = match ChainDriver::new(&cl, Strategy::rcmp_split(3))
                .with_injector(injector)
                .run(&chain.jobs)
            {
                Ok(_) => format!(
                    "{:?}",
                    digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                        .unwrap()
                        .0
                ),
                Err(Error::RecoveryExhausted { .. }) => "exhausted".to_string(),
                Err(Error::DataLoss { ref path, .. }) if path == "input" => "lost".to_string(),
                Err(e) => panic!("seed {chaos_seed}: unexpected error {e}"),
            };
            let stats: Vec<_> = (0..NODES)
                .map(|n| cl.dfs().node_stats(rcmp::model::NodeId(n)))
                .collect();
            runs.push((outcome, stats));
        }
        assert_eq!(
            runs[0], runs[1],
            "seed {chaos_seed}: sharded store diverged from single-lock oracle"
        );
    }
}

/// The per-job reactor session observed at engine level: one multi-wave
/// job on `async:2` spawns exactly two OS worker threads total, while
/// the wave counter keeps climbing — the pool now lives for the job,
/// not for a wave.
#[test]
fn job_reuses_one_worker_pool_across_all_waves() {
    let cl = cluster(
        29,
        ShuffleConfig::default(),
        ExecutorConfig::async_workers(2),
    );
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 15_000)).unwrap();
    let chain = ChainBuilder::new(1, NODES * 2).build();
    let tracker = JobTracker::new(&cl, Arc::new(NoFailures));
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    assert!(
        report.map_waves + report.reduce_waves >= 2,
        "need a multi-wave job to observe pool reuse"
    );
    let snap = cl.metrics().snapshot();
    let waves = snap.counter("exec.waves").unwrap_or(0);
    assert!(waves >= 2, "expected >= 2 executor waves, got {waves}");
    assert_eq!(
        snap.counter("exec.worker_starts"),
        Some(2),
        "a 2-worker session must spawn exactly 2 OS threads for the whole job"
    );
    assert_eq!(
        snap.get("exec.workers"),
        Some(&SnapshotValue::Gauge(2)),
        "exec.workers reports the session pool size"
    );
}
