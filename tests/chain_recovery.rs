//! End-to-end multi-job failure-recovery tests (the paper's Fig. 1 and
//! §IV scenarios), driven through the RCMP middleware over the real
//! engine.
//!
//! The central invariant everywhere: the chain's final output digest is
//! a pure function of the input — every strategy, failure pattern and
//! recovery path must reproduce it exactly.

use rcmp::core::driver::RestartMode;
use rcmp::core::strategy::HotspotMitigation;
use rcmp::core::{ChainDriver, ChainEvent, SplitPolicy, Strategy};
use rcmp::engine::failure::Trigger;
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ClusterConfig, JobId, NodeId, SlotConfig};
use rcmp::workloads::checksum::{digest_file, OutputDigest};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn cluster(nodes: u32) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 7,
    })
}

fn setup(nodes: u32, jobs: u32) -> (Cluster, rcmp::workloads::ChainSpec) {
    let cl = cluster(nodes);
    generate_input(cl.dfs(), &DataGenConfig::test("input", nodes, 25_000)).unwrap();
    let chain = ChainBuilder::new(jobs, nodes).build();
    (cl, chain)
}

/// Failure-free reference digest for a given topology.
fn reference_digest(nodes: u32, jobs: u32) -> OutputDigest {
    let (cl, chain) = setup(nodes, jobs);
    let driver = ChainDriver::new(&cl, Strategy::rcmp_no_split());
    let outcome = driver.run(&chain.jobs).unwrap();
    assert_eq!(outcome.jobs_started, jobs as u64);
    digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0
}

fn final_digest(cl: &Cluster, chain: &rcmp::workloads::ChainSpec) -> OutputDigest {
    digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0
}

#[test]
fn rcmp_failure_free_runs_each_job_once() {
    let (cl, chain) = setup(4, 3);
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_split(3))
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.jobs_started, 3);
    assert_eq!(outcome.events.recompute_runs(), 0);
    assert_eq!(outcome.restarts, 0);
}

/// The Fig. 1 scenario: a failure late in the chain cascades back and
/// the output is still exact.
#[test]
fn rcmp_cascading_recovery_preserves_output() {
    let reference = reference_digest(5, 3);
    let (cl, chain) = setup(5, 3);
    // Kill a node right as job 3 starts: outputs of jobs 1 and 2 on it
    // are lost, job 3's input is broken.
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();

    assert!(outcome.jobs_started > 3, "recomputation runs were needed");
    assert!(outcome.events.recompute_runs() > 0);
    assert_eq!(
        outcome.events.last_seq(),
        Some(outcome.jobs_started),
        "the event log numbers every run the driver started"
    );
    assert_eq!(outcome.restarts, 0, "RCMP never restarts the chain");
    assert_eq!(final_digest(&cl, &chain), reference);
}

/// Recomputation runs execute only a fraction of the tasks (the paper's
/// 1/N claim): reducers only for lost partitions, mappers only where
/// persisted outputs died with the node.
#[test]
fn recomputation_runs_are_minimal() {
    let (cl, chain) = setup(5, 3);
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(1),
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();

    let full_reduce = 5; // num_reducers per job
    let mut saw_partial = false;
    for (i, run) in outcome.runs.iter().enumerate() {
        let recompute = outcome.events.iter().any(
            |e| matches!(e, ChainEvent::JobStarted { seq, recompute: true, .. } if *seq == run.seq),
        );
        if recompute {
            assert!(
                run.reduce_tasks_run < full_reduce,
                "run {i}: recompute ran {} of {full_reduce} reducers",
                run.reduce_tasks_run
            );
            assert!(
                run.map_tasks_reused > 0,
                "run {i}: persisted map outputs must be reused"
            );
            saw_partial = true;
        }
    }
    assert!(saw_partial, "at least one recomputation run happened");
}

/// Double failure at different jobs (the paper's FAIL X,Y cases).
#[test]
fn rcmp_survives_double_failure() {
    let reference = reference_digest(6, 4);
    let (cl, chain) = setup(6, 4);
    let injector = Arc::new(ScriptedInjector::new([
        Trigger {
            seq: 2,
            point: TriggerPoint::JobStart,
            node: NodeId(1),
        },
        Trigger {
            seq: 5, // after recovery of the first failure, a later run
            point: TriggerPoint::JobStart,
            node: NodeId(3),
        },
    ]));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_split(4))
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.events.losses(), 2);
    assert!(
        outcome.events.recoveries().count() >= 2,
        "each failure produced at least one recovery plan"
    );
    assert_eq!(final_digest(&cl, &chain), reference);
}

/// Nested failure: the second node dies while RCMP is still recovering
/// from the first (the paper's FAIL 4,7 nested case, §V-B). The driver
/// replans from current state and still converges.
#[test]
fn rcmp_survives_nested_failure_during_recovery() {
    let reference = reference_digest(6, 3);
    let (cl, chain) = setup(6, 3);
    // First kill as job 3 starts (seq 3). Recovery steps follow as seq
    // 4+; kill another node inside the first recovery run.
    let injector = Arc::new(ScriptedInjector::new([
        Trigger {
            seq: 3,
            point: TriggerPoint::JobStart,
            node: NodeId(0),
        },
        Trigger {
            seq: 4,
            point: TriggerPoint::AfterMapWave(0),
            node: NodeId(1),
        },
    ]));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert!(injector_unfired_empty(&outcome), "both kills fired");
    assert_eq!(cl.live_nodes().len(), 4);
    assert_eq!(final_digest(&cl, &chain), reference);
}

fn injector_unfired_empty(outcome: &rcmp::core::ChainOutcome) -> bool {
    // Two loss events recorded means both triggers fired.
    outcome.events.losses() == 2
}

/// OPTIMISTIC: any loss restarts the whole computation; output still
/// exact.
#[test]
fn optimistic_restarts_and_still_correct() {
    let reference = reference_digest(5, 3);
    let (cl, chain) = setup(5, 3);
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(&cl, Strategy::Optimistic)
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.restarts, 1);
    assert_eq!(
        outcome.jobs_started,
        3 + 3,
        "2 jobs before cancel + cancelled job + full 3-job restart"
    );
    assert_eq!(outcome.events.recompute_runs(), 0);
    assert_eq!(final_digest(&cl, &chain), reference);
}

/// REPL-2 absorbs a single failure with zero extra job runs.
#[test]
fn replication_absorbs_single_failure() {
    let reference = reference_digest(5, 3);
    let (cl, chain) = setup(5, 3);
    let injector = Arc::new(ScriptedInjector::single(
        2,
        TriggerPoint::AfterMapWave(0),
        NodeId(4),
    ));
    let outcome = ChainDriver::new(&cl, Strategy::Replication { factor: 2 })
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.jobs_started, 3, "no resubmissions needed");
    assert_eq!(outcome.restarts, 0);
    assert_eq!(final_digest(&cl, &chain), reference);
}

/// Reducer splitting during recovery: same output, more (smaller)
/// reduce tasks, spread over survivors.
#[test]
fn split_recovery_spreads_reduce_work() {
    let reference = reference_digest(6, 3);
    let (cl, chain) = setup(6, 3);
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(
        &cl,
        Strategy::Rcmp {
            split: SplitPolicy::Survivors,
            hotspot: HotspotMitigation::SplitReducers,
        },
    )
    .with_injector(injector)
    .run(&chain.jobs)
    .unwrap();

    // Some recompute run must have executed more reduce tasks than
    // partitions it regenerated (splits), on several distinct nodes.
    let split_run = outcome.runs.iter().find(|r| {
        r.reduce_tasks_run > 0
            && r.reduce_records()
                .any(|t| matches!(t.id, rcmp::model::TaskId::Reduce(rt) if rt.is_split()))
    });
    let split_run = split_run.expect("a split recomputation ran");
    let nodes_used: std::collections::HashSet<_> =
        split_run.reduce_records().map(|t| t.node).collect();
    assert!(
        nodes_used.len() > 1,
        "splits must use multiple nodes, used {nodes_used:?}"
    );
    assert_eq!(final_digest(&cl, &chain), reference);
}

/// Hybrid (§IV-C): replication points bound the cascade, and storage
/// behind the point is reclaimed.
#[test]
fn hybrid_bounds_cascade_and_reclaims() {
    let reference = reference_digest(6, 6);
    let (cl, chain) = setup(6, 6);
    let injector = Arc::new(ScriptedInjector::single(
        6,
        TriggerPoint::JobStart,
        NodeId(3),
    ));
    let outcome = ChainDriver::new(
        &cl,
        Strategy::Hybrid {
            split: SplitPolicy::None,
            every_k: 2,
            factor: 2,
            reclaim: true,
        },
    )
    .with_injector(injector)
    .run(&chain.jobs)
    .unwrap();

    // Replication points after jobs 2, 4, 6.
    let points: Vec<_> = outcome
        .events
        .iter()
        .filter_map(|e| match e {
            ChainEvent::ReplicationPoint { job, .. } => Some(*job),
            _ => None,
        })
        .collect();
    assert_eq!(points, vec![JobId(2), JobId(4), JobId(6)]);

    // No recovery step reaches at or below the last replication point
    // (job 4) — out/4 is replicated, the cascade stops above it.
    for e in outcome.events.iter() {
        if let ChainEvent::JobStarted {
            recompute: true,
            job,
            ..
        } = e
        {
            assert!(
                job.raw() > 4,
                "cascade crossed the replication point: recomputed {job}"
            );
        }
    }

    // Reclamation happened and removed old files.
    assert!(outcome
        .events
        .iter()
        .any(|e| matches!(e, ChainEvent::StorageReclaimed { .. })));
    assert!(!cl.dfs().file_exists("out/1"));
    assert!(!cl.dfs().file_exists("out/3"));

    assert_eq!(final_digest(&cl, &chain), reference);
}

/// The resume-partial extension (the paper's "ideal" behaviour, §V-A):
/// the cancelled job re-runs only its lost partitions, reusing its own
/// surviving persisted map outputs — Fig. 1's minimal task set.
#[test]
fn resume_partial_restart_is_minimal_and_correct() {
    let reference = reference_digest(5, 3);
    let (cl, chain) = setup(5, 3);
    let injector = Arc::new(ScriptedInjector::single(
        2,
        TriggerPoint::AfterReduceWave(0),
        NodeId(1),
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_restart_mode(RestartMode::ResumePartial)
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(final_digest(&cl, &chain), reference);

    // If the failure cancelled job 2 (it can also be absorbed
    // intra-job when the damaged partitions' inputs survive), the retry
    // must have been a partial resume.
    let cancelled = outcome
        .events
        .iter()
        .any(|e| matches!(e, ChainEvent::JobCancelled { .. }));
    if cancelled {
        let resumed = outcome.events.events_for_job(JobId(2)).any(|e| {
            matches!(
                e,
                ChainEvent::JobStarted {
                    recompute: true,
                    ..
                }
            )
        });
        assert!(resumed, "job 2 retried as a resume, not Full");
    }
}

/// Losses that break nothing downstream are abandoned, not recomputed
/// (minimality of the plan): killing a node after the chain finishes
/// changes nothing.
#[test]
fn post_completion_loss_requires_no_work() {
    let (cl, chain) = setup(4, 2);
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.jobs_started, 2);
    // Node dies after completion; final output may lose partitions (a
    // real system would replicate the terminal output), but no driver
    // activity is pending and earlier intermediate losses are moot.
    let _ = cl.fail_node(NodeId(0));
}
