//! Executor-backend acceptance tests: the async reactor's OS-thread
//! budget at DCO scale, cross-backend agreement on the real engine, and
//! cooperative wave cancellation after a fatal fault.

use rcmp::engine::{Cluster, JobRun, JobTracker, NoFailures, ScriptedInjector, TriggerPoint};
use rcmp::exec::{AsyncExecutor, Executor, SlotOutcome, SlotTask, TaskCtx, WaveSpec};
use rcmp::model::{ByteSize, ClusterConfig, ExecutorConfig, NodeId, SlotConfig, TaskId};
use rcmp::obs::{MetricsRegistry, SnapshotValue, SpanKind, Tracer};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Acceptance: a DCO-scale wave — every slot of all 60 nodes 80 times
/// over, 4800 logical tasks — runs on the async backend with at most
/// `num_cpus` worker OS threads, observed through the `exec.workers`
/// gauge the reactor sets when it sizes the wave's pool.
#[test]
fn async_dco_wave_runs_on_bounded_worker_pool() {
    const TASKS_PER_NODE: usize = 80;
    let nodes = ClusterConfig::dco().nodes as usize;
    let total = nodes * TASKS_PER_NODE;
    assert_eq!(total, 4800, "the paper's largest wave shape");

    let tracer = Arc::new(Tracer::new());
    let registry = MetricsRegistry::new();
    let exec = AsyncExecutor::new(0).with_obs(tracer, &registry);
    let tasks: Vec<SlotTask<'_, usize>> = (0..total)
        .map(|i| SlotTask::new(move |_: &TaskCtx| i))
        .collect();
    let outcomes = exec.run_wave(&WaveSpec::new("dco-wave", 0xdc0), tasks);

    assert_eq!(outcomes.len(), total);
    for (i, o) in outcomes.iter().enumerate() {
        assert!(
            matches!(o, SlotOutcome::Completed(v) if *v == i),
            "outcome {i} not completed in input order: {o:?}"
        );
    }

    let snap = registry.snapshot();
    let workers = match snap.get("exec.workers") {
        Some(SnapshotValue::Gauge(w)) => *w,
        other => panic!("exec.workers gauge missing: {other:?}"),
    };
    assert!(workers >= 1, "at least one worker ran the wave");
    assert!(
        workers as usize <= num_cpus(),
        "4800 slot tasks must not use more than num_cpus ({}) OS threads, used {workers}",
        num_cpus()
    );
    // Admission-yield polling: exactly two polls per completed task.
    assert_eq!(snap.counter("exec.polls"), Some(2 * total as u64));
    assert_eq!(snap.counter("exec.tasks_completed"), Some(total as u64));
    assert_eq!(snap.counter("exec.waves"), Some(1));
}

fn engine_run(
    executor: ExecutorConfig,
) -> (rcmp::engine::JobReport, rcmp::workloads::OutputDigest) {
    let cl = Cluster::new(ClusterConfig {
        nodes: 4,
        slots: SlotConfig::TWO_TWO,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        seed: 9,
        executor,
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
    });
    generate_input(cl.dfs(), &DataGenConfig::test("input", 4, 20_000)).unwrap();
    let chain = ChainBuilder::new(1, 4).build();
    let tracker = JobTracker::new(&cl, Arc::new(NoFailures));
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    (report, digest)
}

/// Under a fixed cluster seed the backends execute *identical*
/// schedules: same task-to-node-to-wave assignment, same I/O volumes,
/// same output bytes. Wave assignment happens before execution and
/// outcomes are input-ordered, so backend choice cannot leak into
/// anything the policy kernel or the digests observe.
#[test]
fn backends_execute_identical_schedules() {
    let (threaded, threaded_digest) = engine_run(ExecutorConfig::default());
    for cfg in [
        ExecutorConfig::async_auto(),
        ExecutorConfig::async_workers(1),
    ] {
        let (asynced, async_digest) = engine_run(cfg);
        let key = |r: &rcmp::engine::JobReport| -> Vec<(TaskId, NodeId, u32)> {
            r.tasks.iter().map(|t| (t.id, t.node, t.wave)).collect()
        };
        assert_eq!(key(&threaded), key(&asynced), "schedule diverged: {cfg:?}");
        assert_eq!(threaded.map_waves, asynced.map_waves);
        assert_eq!(threaded.reduce_waves, asynced.reduce_waves);
        assert_eq!(threaded.io, asynced.io, "I/O accounting diverged: {cfg:?}");
        assert_eq!(threaded_digest, async_digest, "output diverged: {cfg:?}");
    }
}

fn crash_run(
    executor: ExecutorConfig,
) -> (
    rcmp::engine::JobReport,
    usize,
    rcmp::workloads::OutputDigest,
) {
    let cl = Cluster::new(ClusterConfig {
        nodes: 4,
        slots: SlotConfig::TWO_TWO,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        seed: 11,
        executor,
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
    });
    generate_input(cl.dfs(), &DataGenConfig::test("input", 4, 33_000)).unwrap();
    let chain = ChainBuilder::new(1, 4).build();
    // Kill node 1 after wave 0 is assigned but before it executes: its
    // in-flight map tasks hit fatal node-death failures when they run.
    let injector = Arc::new(ScriptedInjector::single(
        1,
        TriggerPoint::MidMapWave(0),
        NodeId(1),
    ));
    let tracker = JobTracker::new(&cl, injector);
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    let task_spans = cl
        .tracer()
        .snapshot()
        .spans()
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Task { .. }))
        .count();
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    (report, task_spans, digest)
}

/// Cooperative cancellation: with `cancel_on_fatal` on, the first fatal
/// failure of a wave drains the rest of it — the skipped tasks never
/// open task spans and are re-assigned in the next recovery round — so
/// the trace holds strictly fewer task spans than the same crash
/// without cancellation, and the output is still exact.
#[test]
fn cancel_on_fatal_drains_poisoned_wave_early() {
    // Single worker: the wave drains in seeded order, so how many tasks
    // run before the fatal one is a pure function of the seed.
    let (baseline, baseline_spans, baseline_digest) = crash_run(ExecutorConfig::async_workers(1));
    let (cancelled, cancelled_spans, cancelled_digest) =
        crash_run(ExecutorConfig::async_workers(1).with_cancel_on_fatal());

    assert_eq!(baseline.tasks_cancelled, 0);
    assert!(
        cancelled.tasks_cancelled > 0,
        "the fatal fault must cancel at least one queued task"
    );
    assert!(
        cancelled_spans < baseline_spans,
        "cancelled run must attempt fewer tasks ({cancelled_spans} vs {baseline_spans})"
    );
    assert_eq!(
        baseline_digest, cancelled_digest,
        "cancellation must not change the output"
    );
}
