//! Validation #3 (DESIGN.md): on matched configurations the simulator's
//! *accounting* — task counts, wave counts, transfer volumes — must
//! agree with the real engine's measured reports. Time is modeled;
//! volume is arithmetic, and arithmetic has to match.

use rcmp::engine::{Cluster, JobRun, JobTracker, NoFailures};
use rcmp::model::{ByteSize, ClusterConfig, ExecutorConfig, SlotConfig};
use rcmp::sim::{HwProfile, JobSim, SimState, WorkloadCfg};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 4;
const BLOCK: u64 = 4096;
/// 112-byte records, 36 per 4096-byte block; 72 records = exactly two
/// full blocks per partition, so the engine's record-aligned chunking
/// and the simulator's byte-aligned chunking agree block for block.
const RECORDS_PER_PARTITION: u64 = 72;
const BYTES_PER_PARTITION: u64 = RECORDS_PER_PARTITION * 112;

fn engine_run() -> rcmp::engine::JobReport {
    let cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::bytes(BLOCK),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        seed: 5,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
    });
    let cfg = DataGenConfig {
        value_size: 100,
        ..DataGenConfig::test("input", NODES, BYTES_PER_PARTITION)
    };
    generate_input(cluster.dfs(), &cfg).unwrap();
    let chain = ChainBuilder::new(1, NODES).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap()
}

fn sim_run() -> rcmp::sim::SimJobReport {
    let wl = WorkloadCfg {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        jobs: 1,
        per_node_input: ByteSize::bytes(BYTES_PER_PARTITION),
        block_size: ByteSize::bytes(BLOCK),
        num_reducers: NODES,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: 3,
    };
    let js = JobSim::new(HwProfile::stic(), wl.clone());
    let mut state = SimState::new(&wl);
    js.run_full(&mut state, 1, 1, true).unwrap()
}

#[test]
fn task_and_wave_counts_agree() {
    let engine = engine_run();
    let sim = sim_run();
    assert_eq!(engine.map_tasks_run, sim.mappers_run, "mapper counts");
    assert_eq!(engine.map_waves, sim.map_waves, "map wave counts");
    assert_eq!(
        engine.reduce_tasks_run, sim.reduce_tasks_run,
        "reducer counts"
    );
    assert_eq!(engine.reduce_waves, sim.reduce_waves, "reduce wave counts");
}

#[test]
fn io_volumes_agree() {
    let engine = engine_run();
    let sim = sim_run();

    // Map input: every byte of the input is read exactly once.
    let total_input = (BYTES_PER_PARTITION * NODES as u64) as f64;
    assert_eq!(
        engine.io.map_input_total() as f64,
        total_input,
        "engine reads the whole input"
    );
    assert_eq!(
        sim.io.map_input_local + sim.io.map_input_remote,
        total_input as u64,
        "sim reads the whole input"
    );

    // Shuffle: with a 1:1 map ratio the shuffle volume equals the input
    // (the engine's records carry their 12-byte headers through the
    // mapper unchanged, so encoded sizes are conserved).
    assert_eq!(engine.io.shuffle_total() as f64, total_input);
    assert_eq!(
        (sim.io.shuffle_local + sim.io.shuffle_remote) as f64,
        total_input
    );

    // Output: 1:1 reduce ratio conserves bytes; no replication traffic.
    assert_eq!(engine.io.output_written as f64, total_input);
    assert_eq!(sim.io.output_written as f64, total_input);
    assert_eq!(engine.io.replication_written, 0);
    assert_eq!(sim.io.replication_written, 0);
}

/// Locality profiles agree qualitatively: balanced, replicated input
/// makes the overwhelming majority of mapper reads local in both
/// implementations.
#[test]
fn locality_profiles_agree() {
    let engine = engine_run();
    let sim = sim_run();
    let engine_local = engine.io.map_input_local as f64 / engine.io.map_input_total() as f64;
    let sim_local =
        sim.io.map_input_local as f64 / (sim.io.map_input_local + sim.io.map_input_remote) as f64;
    assert!(engine_local > 0.7, "engine locality {engine_local}");
    assert!(sim_local > 0.7, "sim locality {sim_local}");
}

/// Recompute accounting agrees structurally: after a single node death,
/// both implementations re-run only a small fraction of mappers and
/// exactly the lost partitions' reducers.
#[test]
fn recompute_fractions_agree() {
    // Engine side.
    let cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::bytes(BLOCK),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        seed: 5,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
    });
    let cfg = DataGenConfig {
        value_size: 100,
        ..DataGenConfig::test("input", NODES, BYTES_PER_PARTITION)
    };
    generate_input(cluster.dfs(), &cfg).unwrap();
    let chain = ChainBuilder::new(1, NODES).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    cluster.fail_node(rcmp::model::NodeId(NODES - 1));
    let lost = cluster.dfs().file_meta("out/1").unwrap().lost_partitions();
    let engine_rec = tracker
        .run(
            &JobRun::recompute(
                chain.job(1).clone(),
                rcmp::engine::RecomputeInstructions::new(lost.iter().copied(), None),
            ),
            2,
        )
        .unwrap();

    // Sim side.
    let wl = WorkloadCfg {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        jobs: 1,
        per_node_input: ByteSize::bytes(BYTES_PER_PARTITION),
        block_size: ByteSize::bytes(BLOCK),
        num_reducers: NODES,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: 3,
    };
    let js = JobSim::new(HwProfile::stic(), wl.clone());
    let mut state = SimState::new(&wl);
    js.run_full(&mut state, 1, 1, true).unwrap();
    state.fail_node(NODES - 1);
    let sim_lost = state.files[&1].lost_partitions(&state);
    let sim_rec = js
        .run_recompute(
            &mut state,
            1,
            &rcmp::sim::jobsim::RecomputeSpec::new(sim_lost.iter().copied(), 1),
            true,
        )
        .unwrap();

    // Both regenerate exactly the lost partitions with whole reducers.
    assert_eq!(engine_rec.reduce_tasks_run, lost.len());
    assert_eq!(sim_rec.reduce_tasks_run, sim_lost.len());
    // Both reuse most persisted map outputs.
    assert!(engine_rec.map_tasks_reused > engine_rec.map_tasks_run);
    assert!(sim_rec.mappers_reused > sim_rec.mappers_run);
    // Fraction re-run ≈ 1/N in both (placement differs in detail, so
    // allow a factor-2 envelope around the ideal).
    let total = (engine_rec.map_tasks_run + engine_rec.map_tasks_reused) as f64;
    let engine_frac = engine_rec.map_tasks_run as f64 / total;
    let sim_total = (sim_rec.mappers_run + sim_rec.mappers_reused) as f64;
    let sim_frac = sim_rec.mappers_run as f64 / sim_total;
    let ideal = 1.0 / NODES as f64;
    for (name, frac) in [("engine", engine_frac), ("sim", sim_frac)] {
        assert!(
            frac <= ideal * 2.0 + 1e-9,
            "{name} re-ran too many mappers: {frac} vs ideal {ideal}"
        );
    }
}
