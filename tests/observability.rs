//! End-to-end acceptance tests for the unified tracing layer: a
//! chaos-injected 7-job chain must produce a structurally valid Chrome
//! trace, a hot-spot report whose top node is the node that recomputed
//! the lost reducer outputs (Fig. 6), and a slot-occupancy profile
//! showing recomputation runs strictly under-utilizing the cluster
//! (Fig. 4).

use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ByteSize, ClusterConfig, NodeId, SlotConfig, TaskId};
use rcmp::obs::{
    chrome_trace_value, hotspot_report, recomputation_critical_path, slot_occupancy, summary,
    SpanId, SpanKind, Trace,
};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use serde::Value;
use std::collections::HashMap;
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 7;
const KILL_SEQ: u64 = 4;
const VICTIM: NodeId = NodeId(2);

/// Runs the paper's 7-job chain with a node crash at the start of run
/// 4, under RCMP without splitting, and snapshots the trace.
fn chaos_chain_trace() -> Trace {
    let cl = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        seed: 7,
    });
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 12_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    let injector = Arc::new(ScriptedInjector::single(
        KILL_SEQ,
        TriggerPoint::JobStart,
        VICTIM,
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert!(outcome.jobs_started > JOBS as u64, "failure forced reruns");
    assert!(outcome.events.recompute_runs() > 0);
    cl.tracer().snapshot()
}

fn obj(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Object(fields) => fields,
        other => panic!("expected object, got {other:?}"),
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    obj(v).iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Seq of the run a span belongs to, via the parent chain.
fn run_seq(index: &HashMap<SpanId, &rcmp::obs::Span>, span: &rcmp::obs::Span) -> Option<u64> {
    let mut s = span;
    loop {
        if let SpanKind::JobRun { seq, .. } = s.kind {
            return Some(seq);
        }
        s = index.get(&s.parent?)?;
    }
}

#[test]
fn chrome_export_is_structurally_valid() {
    let trace = chaos_chain_trace();
    let v = chrome_trace_value(&trace);
    let events = field(&v, "traceEvents").expect("traceEvents key");
    let Value::Array(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(events.len() >= trace.len(), "every span exported");
    let mut complete_events = 0usize;
    for e in events {
        for key in ["name", "ph", "ts", "pid"] {
            assert!(field(e, key).is_some(), "event missing {key}: {e:?}");
        }
        if field(e, "ph") == Some(&Value::String("X".to_string())) {
            assert!(field(e, "dur").is_some(), "complete event without dur");
            complete_events += 1;
        }
    }
    assert!(complete_events > 0, "duration events present");
    assert!(
        field(&v, "displayTimeUnit").is_some(),
        "viewer hint present"
    );
    // The trace is non-trivial: the summary lists the core span kinds.
    let s = summary(&trace);
    for kind in [
        "JobRun",
        "Wave",
        "Task",
        "ShuffleFetch",
        "Fault",
        "RecoveryPlan",
    ] {
        assert!(s.contains(kind), "summary missing {kind}:\n{s}");
    }
}

#[test]
fn hotspot_top_node_is_the_recompute_node() {
    let trace = chaos_chain_trace();
    let index: HashMap<SpanId, &rcmp::obs::Span> =
        trace.spans().iter().map(|s| (s.id, s)).collect();

    // The runs that recomputed lost outputs.
    let recompute_seqs: Vec<u64> = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                recompute: true,
                ..
            } => Some(seq),
            _ => None,
        })
        .collect();
    let lo = *recompute_seqs.iter().min().expect("recompute runs traced");

    // Every recomputed reducer ran on the same node (Balance assignment
    // concentrates a single lost partition onto the lowest-index live
    // node) — the paper's hot-spot mechanism.
    let recompute_reduce_nodes: Vec<NodeId> = trace
        .spans()
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                SpanKind::Task {
                    id: TaskId::Reduce(_),
                    ok: true,
                    ..
                }
            ) && run_seq(&index, s).is_some_and(|seq| recompute_seqs.contains(&seq))
        })
        .filter_map(|s| s.node)
        .collect();
    assert!(!recompute_reduce_nodes.is_empty());
    let hot = recompute_reduce_nodes[0];
    assert!(
        recompute_reduce_nodes.iter().all(|&n| n == hot),
        "recomputed reducers concentrated on one node: {recompute_reduce_nodes:?}"
    );
    assert_ne!(hot, VICTIM, "recompute cannot run on the dead node");

    // The cancelled job's rerun reads the recomputed outputs, so over
    // the recovery window that node serves the most bytes.
    let cancelled_job = trace
        .spans()
        .iter()
        .find_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                job,
                ok: false,
                ..
            } if seq == KILL_SEQ => Some(job),
            _ => None,
        })
        .expect("run 4 was cancelled");
    let rerun_seq = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq, job, ok: true, ..
            } if job == cancelled_job && seq > KILL_SEQ => Some(seq),
            _ => None,
        })
        .min()
        .expect("cancelled job reran");

    let report = hotspot_report(&trace, lo, rerun_seq);
    assert_eq!(
        report.top(),
        Some(hot),
        "hot-spot top node over seq {lo}..={rerun_seq}:\n{}",
        report.render()
    );
    assert!(report.gini > 0.0, "load is skewed, not uniform");
}

#[test]
fn recompute_runs_underutilize_slots() {
    let trace = chaos_chain_trace();
    let occ = slot_occupancy(&trace);
    let recomputes: Vec<_> = occ
        .iter()
        .filter(|r| r.recompute && !r.waves.is_empty())
        .collect();
    assert!(!recomputes.is_empty(), "recompute runs have waves");
    for rec in recomputes {
        let original = occ
            .iter()
            .find(|o| !o.recompute && o.job == rec.job && !o.waves.is_empty())
            .expect("original full run of the recomputed job");
        assert!(
            rec.avg_occupancy() < original.avg_occupancy(),
            "recompute of {} (seq {}, avg {:.2}) must under-utilize vs full run \
             (seq {}, avg {:.2})",
            rec.job,
            rec.seq,
            rec.avg_occupancy(),
            original.seq,
            original.avg_occupancy()
        );
    }
}

#[test]
fn critical_path_covers_the_cascade() {
    let trace = chaos_chain_trace();
    let path = recomputation_critical_path(&trace).expect("cascade recorded");
    assert!(path.cause.is_some(), "cascade causally linked to its loss");
    let recompute_seqs: Vec<u64> = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                recompute: true,
                ..
            } => Some(seq),
            _ => None,
        })
        .collect();
    assert_eq!(
        path.steps.iter().map(|s| s.seq).collect::<Vec<_>>(),
        recompute_seqs,
        "one cascade: every recompute run lies on the critical path"
    );
    assert!(path.total_us > 0);
    // The cause chain roots at the injected loss, which the fault span
    // caused — walk it explicitly.
    let index: HashMap<SpanId, &rcmp::obs::Span> =
        trace.spans().iter().map(|s| (s.id, s)).collect();
    let mut root = path.cause.unwrap();
    while let Some(up) = index.get(&root).and_then(|s| s.cause) {
        root = up;
    }
    let root_span = index[&root];
    assert!(
        matches!(
            root_span.kind,
            SpanKind::Fault { .. } | SpanKind::Loss { .. }
        ),
        "cascade roots at the injected fault/loss, got {:?}",
        root_span.kind
    );
}
