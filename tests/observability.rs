//! End-to-end acceptance tests for the unified tracing layer: a
//! chaos-injected 7-job chain must produce a structurally valid Chrome
//! trace, a hot-spot report whose top node is the node that recomputed
//! the lost reducer outputs (Fig. 6), and a slot-occupancy profile
//! showing recomputation runs strictly under-utilizing the cluster
//! (Fig. 4).

use rcmp::core::{ChainDriver, ChainEvent, ChainOutcome, Strategy};
use rcmp::engine::failure::{Fault, FaultTrigger};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ByteSize, ClusterConfig, Error, NodeId, SlotConfig, TaskId};
use rcmp::obs::{
    chrome_trace_value, hotspot_report, recomputation_critical_path, slot_occupancy, summary,
    Clock, EventCode, FlightRecorder, PhaseKind, SpanId, SpanKind, Trace,
};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use serde::Value;
use std::collections::HashMap;
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 7;
const KILL_SEQ: u64 = 4;
const VICTIM: NodeId = NodeId(2);

fn cluster(max_recovery_attempts: u32) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 7,
    })
}

/// Runs the paper's 7-job chain with a node crash at the start of run
/// 4, under RCMP without splitting.
fn chaos_chain(cl: &Cluster) -> ChainOutcome {
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 12_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    let injector = Arc::new(ScriptedInjector::single(
        KILL_SEQ,
        TriggerPoint::JobStart,
        VICTIM,
    ));
    let outcome = ChainDriver::new(cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert!(outcome.jobs_started > JOBS as u64, "failure forced reruns");
    assert!(outcome.events.recompute_runs() > 0);
    outcome
}

/// Same scenario, snapshotting only the trace.
fn chaos_chain_trace() -> Trace {
    let cl = cluster(100);
    chaos_chain(&cl);
    cl.tracer().snapshot()
}

fn obj(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Object(fields) => fields,
        other => panic!("expected object, got {other:?}"),
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    obj(v).iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Seq of the run a span belongs to, via the parent chain.
fn run_seq(index: &HashMap<SpanId, &rcmp::obs::Span>, span: &rcmp::obs::Span) -> Option<u64> {
    let mut s = span;
    loop {
        if let SpanKind::JobRun { seq, .. } = s.kind {
            return Some(seq);
        }
        s = index.get(&s.parent?)?;
    }
}

#[test]
fn chrome_export_is_structurally_valid() {
    let trace = chaos_chain_trace();
    let v = chrome_trace_value(&trace);
    let events = field(&v, "traceEvents").expect("traceEvents key");
    let Value::Array(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(events.len() >= trace.len(), "every span exported");
    let mut complete_events = 0usize;
    for e in events {
        for key in ["name", "ph", "ts", "pid"] {
            assert!(field(e, key).is_some(), "event missing {key}: {e:?}");
        }
        if field(e, "ph") == Some(&Value::String("X".to_string())) {
            assert!(field(e, "dur").is_some(), "complete event without dur");
            complete_events += 1;
        }
    }
    assert!(complete_events > 0, "duration events present");
    assert!(
        field(&v, "displayTimeUnit").is_some(),
        "viewer hint present"
    );
    // The trace is non-trivial: the summary lists the core span kinds.
    let s = summary(&trace);
    for kind in [
        "JobRun",
        "Wave",
        "Task",
        "ShuffleFetch",
        "Fault",
        "RecoveryPlan",
    ] {
        assert!(s.contains(kind), "summary missing {kind}:\n{s}");
    }
}

#[test]
fn hotspot_top_node_is_the_recompute_node() {
    let trace = chaos_chain_trace();
    let index: HashMap<SpanId, &rcmp::obs::Span> =
        trace.spans().iter().map(|s| (s.id, s)).collect();

    // The runs that recomputed lost outputs.
    let recompute_seqs: Vec<u64> = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                recompute: true,
                ..
            } => Some(seq),
            _ => None,
        })
        .collect();
    let lo = *recompute_seqs.iter().min().expect("recompute runs traced");

    // Every recomputed reducer ran on the same node (Balance assignment
    // concentrates a single lost partition onto the lowest-index live
    // node) — the paper's hot-spot mechanism.
    let recompute_reduce_nodes: Vec<NodeId> = trace
        .spans()
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                SpanKind::Task {
                    id: TaskId::Reduce(_),
                    ok: true,
                    ..
                }
            ) && run_seq(&index, s).is_some_and(|seq| recompute_seqs.contains(&seq))
        })
        .filter_map(|s| s.node)
        .collect();
    assert!(!recompute_reduce_nodes.is_empty());
    let hot = recompute_reduce_nodes[0];
    assert!(
        recompute_reduce_nodes.iter().all(|&n| n == hot),
        "recomputed reducers concentrated on one node: {recompute_reduce_nodes:?}"
    );
    assert_ne!(hot, VICTIM, "recompute cannot run on the dead node");

    // The cancelled job's rerun reads the recomputed outputs, so over
    // the recovery window that node serves the most bytes.
    let cancelled_job = trace
        .spans()
        .iter()
        .find_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                job,
                ok: false,
                ..
            } if seq == KILL_SEQ => Some(job),
            _ => None,
        })
        .expect("run 4 was cancelled");
    let rerun_seq = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq, job, ok: true, ..
            } if job == cancelled_job && seq > KILL_SEQ => Some(seq),
            _ => None,
        })
        .min()
        .expect("cancelled job reran");

    let report = hotspot_report(&trace, lo, rerun_seq);
    assert_eq!(
        report.top(),
        Some(hot),
        "hot-spot top node over seq {lo}..={rerun_seq}:\n{}",
        report.render()
    );
    assert!(report.gini > 0.0, "load is skewed, not uniform");
}

#[test]
fn recompute_runs_underutilize_slots() {
    let trace = chaos_chain_trace();
    let occ = slot_occupancy(&trace);
    let recomputes: Vec<_> = occ
        .iter()
        .filter(|r| r.recompute && !r.waves.is_empty())
        .collect();
    assert!(!recomputes.is_empty(), "recompute runs have waves");
    for rec in recomputes {
        let original = occ
            .iter()
            .find(|o| !o.recompute && o.job == rec.job && !o.waves.is_empty())
            .expect("original full run of the recomputed job");
        assert!(
            rec.avg_occupancy() < original.avg_occupancy(),
            "recompute of {} (seq {}, avg {:.2}) must under-utilize vs full run \
             (seq {}, avg {:.2})",
            rec.job,
            rec.seq,
            rec.avg_occupancy(),
            original.seq,
            original.avg_occupancy()
        );
    }
}

#[test]
fn critical_path_covers_the_cascade() {
    let trace = chaos_chain_trace();
    let path = recomputation_critical_path(&trace).expect("cascade recorded");
    assert!(path.cause.is_some(), "cascade causally linked to its loss");
    let recompute_seqs: Vec<u64> = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                recompute: true,
                ..
            } => Some(seq),
            _ => None,
        })
        .collect();
    assert_eq!(
        path.steps.iter().map(|s| s.seq).collect::<Vec<_>>(),
        recompute_seqs,
        "one cascade: every recompute run lies on the critical path"
    );
    assert!(path.total_us > 0);
    // The cause chain roots at the injected loss, which the fault span
    // caused — walk it explicitly.
    let index: HashMap<SpanId, &rcmp::obs::Span> =
        trace.spans().iter().map(|s| (s.id, s)).collect();
    let mut root = path.cause.unwrap();
    while let Some(up) = index.get(&root).and_then(|s| s.cause) {
        root = up;
    }
    let root_span = index[&root];
    assert!(
        matches!(
            root_span.kind,
            SpanKind::Fault { .. } | SpanKind::Loss { .. }
        ),
        "cascade roots at the injected fault/loss, got {:?}",
        root_span.kind
    );
}

/// The engine's phase profiler and the simulator's projection emit the
/// *same* Fig.-7-style schema for the 7-job chain — every phase row in
/// the same order — so a breakdown from either source renders and
/// diffs through one code path. The engine side must actually have
/// attributed time to the real phases of the chaos chain.
#[test]
fn engine_and_sim_phase_breakdowns_share_one_schema() {
    let cl = cluster(100);
    let outcome = chaos_chain(&cl);

    let mut wl = rcmp::sim::WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.jobs = JOBS;
    wl.per_node_input = wl.per_node_input / 16;
    let sim = rcmp::sim::simulate_chain(&rcmp::sim::ChainSimConfig::new(
        rcmp::sim::HwProfile::stic(),
        wl,
        Strategy::rcmp_no_split(),
    ));
    let sim_phases = sim.phase_breakdown();

    assert_eq!(
        outcome.phases.schema(),
        sim_phases.schema(),
        "engine and simulator must emit identical phase schemas"
    );
    // The engine run attributed real time to the real phases.
    for phase in [
        PhaseKind::MapCompute,
        PhaseKind::MapOutputWrite,
        PhaseKind::ShuffleFetch,
        PhaseKind::DfsRead,
        PhaseKind::DfsWrite,
        PhaseKind::RecoveryPlanning,
        PhaseKind::RecomputeWave,
    ] {
        assert!(
            outcome.phases.entries[phase.index()].count > 0,
            "engine chaos chain attributed nothing to {phase:?}:\n{}",
            outcome.phases.render()
        );
    }
    assert!(sim_phases.total_us(PhaseKind::MapCompute) > 0);
    assert!(sim_phases.total_us(PhaseKind::ReduceUdf) > 0);
    // Per-run deltas cover every successful run and never exceed the
    // whole-chain budget.
    assert_eq!(outcome.job_phases.len(), outcome.runs.len());
    let delta_sum: u64 = outcome
        .job_phases
        .iter()
        .map(|(_, d)| d.grand_total_us())
        .sum();
    assert!(delta_sum <= outcome.phases.grand_total_us());
}

/// Ring overflow at the integration level: a small recorder under a
/// burst keeps exact accounting (`recorded == retained + dropped`),
/// evicts oldest-first, and `snapshot` returns the newest events in
/// global sequence order — from every shard, under concurrency.
#[test]
fn flight_recorder_overflow_keeps_exact_accounting() {
    // Single shard: eviction order is fully observable.
    let rec = FlightRecorder::new(Clock::monotonic(), 64, 1);
    for i in 0..1_000u64 {
        rec.record(EventCode::Probe, None, i, 0);
    }
    let log = rec.snapshot();
    assert_eq!(log.recorded, 1_000);
    assert_eq!(log.events.len(), 64, "capacity bounds retention");
    assert_eq!(log.dropped, 1_000 - 64);
    assert_eq!(
        log.recorded,
        log.events.len() as u64 + log.dropped,
        "no event unaccounted for"
    );
    let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
    assert_eq!(
        seqs,
        (936..1_000).collect::<Vec<u64>>(),
        "oldest evicted first, newest retained in order"
    );

    // Sharded + concurrent: the invariant still holds exactly.
    let rec = Arc::new(FlightRecorder::new(Clock::monotonic(), 32, 4));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    rec.record(EventCode::Probe, None, t, i);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = rec.stats();
    assert_eq!(stats.recorded, 2_000);
    assert_eq!(stats.recorded, stats.retained + stats.dropped);
    let log = rec.snapshot();
    assert_eq!(log.events.len() as u64, stats.retained);
    assert!(
        log.events.windows(2).all(|w| w[0].seq < w[1].seq),
        "merged snapshot is in global sequence order"
    );
}

/// A chaos-induced chain death parks a blackbox dump whose causal
/// lineage is *complete* — fault → loss → recovery plan → recompute —
/// and whose flight-recorder tail holds the matching compact events.
/// The scenario: the same job loses its input again right after a
/// successful recovery, exceeding a budget of one recovery per job.
#[test]
fn chaos_chain_death_parks_a_complete_blackbox() {
    // Probe run (generous budget): learn which seq the cancelled job's
    // retry lands on. The engine is deterministic for a fixed seed, so
    // the seq replays exactly in the second run.
    let (cancelled_job, retry_seq) = {
        let cl = cluster(100);
        let outcome = chaos_chain(&cl);
        let job = outcome
            .events
            .iter()
            .find_map(|e| match e {
                ChainEvent::JobCancelled { seq, job } if *seq == KILL_SEQ => Some(*job),
                _ => None,
            })
            .expect("run 4 was cancelled");
        let retry = outcome
            .events
            .iter()
            .filter_map(|e| match e {
                ChainEvent::JobStarted {
                    seq,
                    job: j,
                    recompute: false,
                } if *j == job && *seq > KILL_SEQ => Some(*seq),
                _ => None,
            })
            .min()
            .expect("cancelled job retried");
        (job, retry)
    };

    // Real run: budget of one recovery, and a second kill at the
    // retry — the repeated input loss exhausts the budget.
    let cl = cluster(1);
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 12_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
    injector.add_fault(FaultTrigger {
        seq: KILL_SEQ,
        point: TriggerPoint::JobStart,
        fault: Fault::NodeCrash(VICTIM),
    });
    injector.add_fault(FaultTrigger {
        seq: retry_seq,
        point: TriggerPoint::JobStart,
        fault: Fault::NodeCrash(NodeId(1)),
    });
    let err = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap_err();
    assert!(
        matches!(err, Error::RecoveryExhausted { job, .. } if job == cancelled_job),
        "expected RecoveryExhausted for {cancelled_job:?}, got {err}"
    );

    let dump = cl
        .take_blackbox("chain")
        .expect("a typed chain death parks a blackbox dump");
    assert_eq!(dump.reason, err.to_string(), "reason is the typed error");
    assert!(
        dump.lineage_is_complete(),
        "lineage must chain fault -> loss -> plan -> recompute:\n{}",
        dump.render()
    );
    // The recompute run hangs off the recovery plan in the lineage.
    assert!(
        dump.lineage.iter().any(|s| matches!(
            s.kind,
            SpanKind::JobRun {
                recompute: true,
                ..
            }
        )),
        "recompute run missing from lineage:\n{}",
        dump.render()
    );
    // The flight-recorder tail carries the matching compact events.
    for code in [
        EventCode::FaultInjected,
        EventCode::PartitionsLost,
        EventCode::RecoveryPlanned,
        EventCode::RecomputeStarted,
    ] {
        assert!(
            dump.recent.iter().any(|e| e.code == code),
            "recent events missing {code:?}:\n{}",
            dump.render()
        );
    }
    // Nothing was silently lost, and the phase budget rode along.
    assert_eq!(dump.recorded, dump.recent.len() as u64 + dump.dropped);
    assert!(dump.phases.entries[PhaseKind::RecoveryPlanning.index()].count >= 1);
    // A second driver with the same label would overwrite; the dump we
    // took is ours alone (and no other chain key is parked either).
    assert!(cl.take_blackbox("chain").is_none());
    assert!(cl.take_any_blackbox().is_none());
    // The dump is JSON-serializable for `RCMP_BLACKBOX_DIR`-style
    // export, lineage included.
    let json = dump.to_json();
    assert!(json.contains("RecoveryPlan") && json.contains("reason"));
    // The free-text error names the job, matching the typed field.
    assert_eq!(dump.reason, err.to_string());
    // Run 4's wave events reached the recorder before the death.
    assert!(
        dump.recent
            .iter()
            .any(|e| e.code == EventCode::WaveStart || e.code == EventCode::TaskDone),
        "wave-level events missing from the tail:\n{}",
        dump.render()
    );
}
