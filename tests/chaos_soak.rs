//! Chaos soak: the 7-job chain under seeded randomized fault schedules.
//!
//! The fault injector mixes node kills, silent replica corruption, torn
//! partition writes and transient shuffle flakes. The contract under
//! chaos is binary: the chain either converges to the exact golden
//! output digest, or surfaces a typed [`Error::RecoveryExhausted`] —
//! never a hang, a panic or a silently wrong output. Every schedule is
//! a pure function of its seed, so any failing case replays exactly.

use proptest::prelude::*;
use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::failure::{Fault, FaultTrigger};
use rcmp::engine::{Cluster, RandomizedInjector, ScriptedInjector, TriggerPoint};
use rcmp::model::{
    ByteSize, ChainCacheConfig, ClusterConfig, Error, ExecutorConfig, NodeId, PlacementKernel,
    SlotConfig,
};
use rcmp::workloads::checksum::{digest_file, OutputDigest};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 7;

fn cluster() -> Cluster {
    cluster_with(ExecutorConfig::from_env_or_default())
}

fn cluster_with(executor: ExecutorConfig) -> Cluster {
    cluster_cached(executor, ChainCacheConfig::default())
}

fn cluster_cached(executor: ExecutorConfig, chain_cache: ChainCacheConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor,
        shuffle: Default::default(),
        retry: Default::default(),
        placement: if chain_cache.enabled {
            PlacementKernel::Stable
        } else {
            PlacementKernel::from_env_or_default()
        },
        chain_cache,
        seed: 23,
    })
}

/// Input replicated 3× (`DataGenConfig::test` default): with kills
/// capped at 2, no schedule can make the chain input unrecoverable, so
/// "typed error" outcomes are genuine recovery-budget exhaustions, not
/// unavoidable data loss.
fn setup(cl: &Cluster) -> rcmp::workloads::ChainSpec {
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 15_000)).unwrap();
    ChainBuilder::new(JOBS, NODES).build()
}

fn golden() -> OutputDigest {
    let cl = cluster();
    let chain = setup(&cl);
    ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .run(&chain.jobs)
        .unwrap();
    digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 60,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// ≥50 randomized fault schedules over the 7-job chain: every one
    /// ends in golden-digest success or a typed recovery error.
    #[test]
    fn chaos_schedule_converges_or_fails_typed(chaos_seed in 0u64..1_000_000) {
        let expected = golden();
        let cl = cluster();
        let chain = setup(&cl);
        let injector = Arc::new(
            RandomizedInjector::new(chaos_seed, NODES)
                .kill_probability(0.08)
                .fault_probability(0.25)
                .max_kills(2)
                .max_other_faults(6),
        );
        match ChainDriver::new(&cl, Strategy::rcmp_split(3))
            .with_injector(injector)
            .run(&chain.jobs)
        {
            Ok(_) => {
                let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                    .unwrap()
                    .0;
                prop_assert_eq!(digest, expected, "seed {} produced wrong output", chaos_seed);
            }
            Err(Error::RecoveryExhausted { .. }) => {
                // Acceptable: the budget surfaced a typed error instead
                // of livelocking.
            }
            Err(Error::DataLoss { ref path, .. }) if path == "input" => {
                // Acceptable: corruption demotes replicas like losses,
                // so kills plus corruption can destroy every replica of
                // an external-input block — unrecoverable by
                // recomputation, and correctly surfaced as typed loss.
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "seed {chaos_seed}: expected success or RecoveryExhausted, got {e}"
                )));
            }
        }
    }
}

/// Golden digest computed once: the cached soaks below compare against
/// the same cache-off oracle on every case, so there is no reason to
/// re-derive it 60 times.
fn golden_once() -> &'static OutputDigest {
    static GOLDEN: std::sync::OnceLock<OutputDigest> = std::sync::OnceLock::new();
    GOLDEN.get_or_init(golden)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 60,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// The cached chain under chaos (ISSUE 10): 60 randomized fault
    /// schedules over the 7-job chain with the inter-job cache on and
    /// the `stable` kernel routing mappers to cached partitions. The
    /// binary contract is unchanged from the cache-off soak — exact
    /// golden digest or a typed recovery error — because kills, drains
    /// and corruption all invalidate cached partitions and fall back
    /// to the persisted DFS path.
    #[test]
    fn cached_chaos_schedule_converges_or_fails_typed(chaos_seed in 0u64..1_000_000) {
        let expected = golden_once();
        let cl = cluster_cached(
            ExecutorConfig::from_env_or_default(),
            ChainCacheConfig::enabled(ByteSize::mib(64)),
        );
        let chain = setup(&cl);
        let injector = Arc::new(
            RandomizedInjector::new(chaos_seed, NODES)
                .kill_probability(0.08)
                .fault_probability(0.25)
                .max_kills(2)
                .max_other_faults(6),
        );
        match ChainDriver::new(&cl, Strategy::rcmp_split(3))
            .with_injector(injector)
            .run(&chain.jobs)
        {
            Ok(_) => {
                let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                    .unwrap()
                    .0;
                prop_assert_eq!(&digest, expected, "seed {} produced wrong output", chaos_seed);
            }
            Err(Error::RecoveryExhausted { .. }) => {}
            Err(Error::DataLoss { ref path, .. }) if path == "input" => {}
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "seed {chaos_seed}: expected success or RecoveryExhausted, got {e}"
                )));
            }
        }
    }
}

/// A budget smaller than any single partition can never admit anything:
/// every committed job spills straight through to the DFS, zero hits,
/// and the chain behaves exactly like the cache-off build — same
/// golden digest, reads served from disk. This is the degradation
/// floor the config documents: sizing the budget wrong costs the
/// speedup, never correctness.
#[test]
fn tiny_budget_degrades_to_pure_spill_through() {
    let expected = golden_once();
    let cl = cluster_cached(
        ExecutorConfig::from_env_or_default(),
        // 1 KiB budget vs ≈300 KiB partitions: nothing ever fits.
        ChainCacheConfig::enabled(ByteSize::kib(1)),
    );
    let chain = setup(&cl);
    ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .run(&chain.jobs)
        .unwrap();
    let snap = cl.metrics().snapshot();
    assert_eq!(
        snap.counter("cache.hits").unwrap_or(0),
        0,
        "a sub-partition budget must never admit, hence never hit"
    );
    assert!(
        snap.counter("cache.spills").unwrap_or(0) > 0,
        "every commit must be recorded as a spill"
    );
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(&digest, expected, "spill-through changed the output");
}

/// Runs the chain once under `exec` with a randomized fault schedule,
/// returning the outcome status plus the recovery event sequence, and
/// asserting any converged run landed on the golden digest.
fn chaos_replay(
    exec: ExecutorConfig,
    chaos_seed: u64,
    kill_prob: f64,
    fault_prob: f64,
    expected: &OutputDigest,
) -> (String, Option<rcmp::core::EventLog>) {
    let cl = cluster_with(exec);
    let chain = setup(&cl);
    let injector = Arc::new(
        RandomizedInjector::new(chaos_seed, NODES)
            .kill_probability(kill_prob)
            .fault_probability(fault_prob)
            .max_kills(2)
            .max_other_faults(6),
    );
    let as_dyn: Arc<dyn rcmp::engine::FailureInjector> = Arc::clone(&injector) as _;
    match ChainDriver::new(&cl, Strategy::rcmp_split(3))
        .with_injector(as_dyn)
        .run(&chain.jobs)
    {
        Ok(outcome) => {
            let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                .unwrap()
                .0;
            assert_eq!(
                digest, *expected,
                "seed {chaos_seed} under {exec:?} produced wrong output"
            );
            let (kills, _) = injector.faults_raised();
            (
                format!("converged after {kills} kills"),
                Some(outcome.events),
            )
        }
        Err(e) => (format!("failed: {e}"), None),
    }
}

/// Backend determinism under the paper's fail-stop failure model: with
/// a crash-only chaos schedule (node kills fire serially at trigger
/// points, never mid-wave) the threaded and async wave executors drive
/// the 7-job chain through *identical* recovery event sequences —
/// every loss, recovery plan and recompute run in the same order — and
/// any converging run lands on the same golden digest. Wave assignment
/// precedes execution and outcomes are input-ordered, so the backend
/// (and its worker count) must be unobservable to the recovery
/// machinery.
///
/// Partial faults are excluded here on purpose: a torn write kills its
/// node *mid-wave* from inside a running task, and which concurrent
/// tasks observe the shrunken live set is inherently timing-dependent
/// under the thread-per-slot backend (see
/// `serial_reactor_replays_full_chaos_exactly` for the guarantee the
/// async reactor adds there).
#[test]
fn backends_replay_identical_recovery_sequences() {
    let expected = golden();
    for chaos_seed in [11u64, 4096, 777_777] {
        let mut replays: Vec<(String, Option<rcmp::core::EventLog>)> = Vec::new();
        for exec in [
            ExecutorConfig::default(),
            ExecutorConfig::async_auto(),
            ExecutorConfig::async_workers(1),
        ] {
            replays.push(chaos_replay(exec, chaos_seed, 0.3, 0.0, &expected));
        }
        let (first, rest) = replays.split_first().expect("three backends ran");
        assert_ne!(
            first.0, "converged after 0 kills",
            "seed {chaos_seed}: schedule injected no kills — test lost its teeth"
        );
        for other in rest {
            assert_eq!(
                first, other,
                "seed {chaos_seed}: backends diverged in outcome or event sequence"
            );
        }
    }
}

/// The serial reactor (`async_workers(1)`) makes even *full-shape*
/// chaos — torn writes that kill nodes mid-wave, shuffle flakes,
/// replica corruption — exactly replayable: two runs of the same seed
/// produce identical outcomes and event sequences. The thread-per-slot
/// backend cannot promise this (mid-wave node death races against
/// in-flight tasks), which is precisely the debugging story the
/// cooperative backend adds: any chaos failure replays deterministically
/// under `RCMP_EXECUTOR=async:1`.
#[test]
fn serial_reactor_replays_full_chaos_exactly() {
    let expected = golden();
    for chaos_seed in [11u64, 4096, 777_777] {
        let first = chaos_replay(
            ExecutorConfig::async_workers(1),
            chaos_seed,
            0.08,
            0.25,
            &expected,
        );
        let second = chaos_replay(
            ExecutorConfig::async_workers(1),
            chaos_seed,
            0.08,
            0.25,
            &expected,
        );
        assert_eq!(
            first, second,
            "seed {chaos_seed}: serial reactor replay diverged"
        );
    }
}

/// A corrupted replica under REPL-2 is caught by the block checksum on
/// read, demoted to a lost replica, and served from the survivor — the
/// chain output is exact and no recomputation is needed for it.
#[test]
fn corrupt_replica_under_repl2_recovers_from_survivor() {
    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    let injector = Arc::new(ScriptedInjector::single_fault(
        2,
        TriggerPoint::JobStart,
        Fault::CorruptReplica { node: NodeId(1) },
    ));
    let outcome = ChainDriver::new(&cl, Strategy::Replication { factor: 2 })
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.restarts, 0, "corruption must not force a restart");
    assert_eq!(
        outcome.jobs_started, JOBS as u64,
        "the surviving replica makes recomputation unnecessary"
    );
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, expected);
}

/// Same fault under RCMP (replication 1): the corrupted block — the
/// most recently written one, a job output — has no surviving replica,
/// so the demotion makes the partition lost and the ordinary
/// recomputation path regenerates it. Output still exact.
#[test]
fn corrupt_replica_under_rcmp_recomputes() {
    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    let injector = Arc::new(ScriptedInjector::single_fault(
        3,
        TriggerPoint::JobStart,
        Fault::CorruptReplica { node: NodeId(2) },
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(outcome.restarts, 0, "RCMP never restarts the chain");
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, expected);
}

/// A torn write leaves a strict prefix of the partition's chunks
/// committed — a partition that can look healthy while silently missing
/// records. The tracker must detect it, clear the partition and
/// re-reduce; the final digest stays exact.
#[test]
fn torn_write_is_detected_and_repaired() {
    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    let injector = Arc::new(ScriptedInjector::single_fault(
        2,
        TriggerPoint::JobStart,
        Fault::TornWrite { node: NodeId(3) },
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    // The torn writer dies mid-write; its job-1 output replicas die
    // with it, so the middleware must run recomputations.
    assert!(
        outcome.jobs_started > JOBS as u64,
        "expected recovery runs after the torn writer died, got {}",
        outcome.jobs_started
    );
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, expected);
}

/// Transient shuffle flakes within the retry budget are absorbed
/// without any recovery machinery kicking in.
#[test]
fn transient_shuffle_flakes_are_absorbed() {
    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
    for (seq, node) in [(1u64, 0u32), (3, 2), (5, 4)] {
        injector.add_fault(FaultTrigger {
            seq,
            point: TriggerPoint::JobStart,
            fault: Fault::ShuffleFlake {
                node: NodeId(node),
                times: 2,
            },
        });
    }
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(
        outcome.jobs_started, JOBS as u64,
        "in-place retries must not trigger recomputation runs"
    );
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, expected);
}

/// A node whose shuffle path never stops failing exhausts the per-task
/// retry budget: the run ends in `RecoveryExhausted`, not a livelock.
#[test]
fn permanent_shuffle_flake_exhausts_retry_budget() {
    let cl = Cluster::new(ClusterConfig {
        nodes: 1,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: PlacementKernel::from_env_or_default(),
        chain_cache: Default::default(),
        seed: 23,
    });
    let mut gen = DataGenConfig::test("input", 1, 4_000);
    gen.replication = 1;
    generate_input(cl.dfs(), &gen).unwrap();
    let chain = ChainBuilder::new(1, 1).build();
    let injector = Arc::new(ScriptedInjector::single_fault(
        1,
        TriggerPoint::JobStart,
        Fault::ShuffleFlake {
            node: NodeId(0),
            times: u32::MAX,
        },
    ));
    let err = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap_err();
    assert!(
        matches!(err, Error::RecoveryExhausted { .. }),
        "expected RecoveryExhausted, got {err}"
    );
}

/// Even a run that dies with a typed recovery error leaves a complete
/// fault record in the trace: every injected fault has its span, with
/// the right kind, because the tracer lives on the cluster and survives
/// the error path.
#[test]
fn failed_run_traces_every_injected_fault() {
    use rcmp::obs::{FaultKind, SpanKind};

    let cl = Cluster::new(ClusterConfig {
        nodes: 1,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: PlacementKernel::from_env_or_default(),
        chain_cache: Default::default(),
        seed: 23,
    });
    let mut gen = DataGenConfig::test("input", 1, 4_000);
    gen.replication = 1;
    generate_input(cl.dfs(), &gen).unwrap();
    let chain = ChainBuilder::new(1, 1).build();
    let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
    injector.add_fault(FaultTrigger {
        seq: 1,
        point: TriggerPoint::JobStart,
        fault: Fault::ShuffleFlake {
            node: NodeId(0),
            times: u32::MAX,
        },
    });
    injector.add_fault(FaultTrigger {
        seq: 1,
        point: TriggerPoint::JobStart,
        fault: Fault::CorruptReplica { node: NodeId(0) },
    });
    let err = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap_err();
    // The flake alone exhausts retries; with the corruption also eating
    // the only input replica the run can die either way — both are
    // typed recovery errors, and both must leave the trace intact.
    assert!(
        matches!(
            err,
            Error::RecoveryExhausted { .. } | Error::DataLoss { .. }
        ),
        "expected a typed recovery error, got {err}"
    );

    let trace = cl.tracer().snapshot();
    let mut fault_kinds: Vec<FaultKind> = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::Fault { kind, .. } => Some(kind),
            _ => None,
        })
        .collect();
    fault_kinds.sort_by_key(|k| format!("{k:?}"));
    assert_eq!(
        fault_kinds,
        vec![FaultKind::CorruptReplica, FaultKind::ShuffleFlake],
        "exactly the two injected faults, each with its span"
    );
    // The failed run's JobRun span is closed with ok = false.
    assert!(
        trace
            .spans()
            .iter()
            .any(|s| matches!(s.kind, SpanKind::JobRun { ok: false, .. })),
        "the exhausted run is traced as failed"
    );
}

/// When every replica of an input partition dies and the strategy can
/// only restart, the chain-restart budget surfaces `RecoveryExhausted`
/// instead of restarting forever.
#[test]
fn unrecoverable_input_exhausts_chain_restart_budget() {
    let cl = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 3,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: PlacementKernel::from_env_or_default(),
        chain_cache: Default::default(),
        seed: 23,
    });
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 15_000)).unwrap();
    let chain = ChainBuilder::new(2, NODES).build();
    // Kill exactly the nodes holding the replicas of the input's first
    // block: that partition becomes unrecoverable, and OPTIMISTIC can
    // only restart into the same loss again.
    let meta = cl.dfs().file_meta("input").unwrap();
    let victims = meta.partitions[0].block_locations()[0].replicas.clone();
    let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
    for node in victims {
        injector.add_fault(FaultTrigger {
            seq: 1,
            point: TriggerPoint::JobStart,
            fault: Fault::NodeCrash(node),
        });
    }
    let err = ChainDriver::new(&cl, Strategy::Optimistic)
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap_err();
    match err {
        Error::RecoveryExhausted { attempts, .. } => {
            assert_eq!(attempts, 4, "budget of 3 restarts, failing on the 4th");
        }
        other => panic!("expected RecoveryExhausted, got {other}"),
    }
}

/// Everything a failing soak needs to be triaged in one string: which
/// scripted faults never fired (a schedule that silently lost its
/// teeth), the adaptive estimator's full trajectory (what the closed
/// loop believed at each job), and — when the chain died with a typed
/// error — the post-mortem blackbox the driver parked on the cluster
/// (flight-recorder tail, causal lineage, phase budget).
fn soak_diagnostics(
    cl: &Cluster,
    injector: &ScriptedInjector,
    adaptation: &[rcmp::policy::AdaptationStep],
) -> String {
    let unfired = injector.unfired_faults();
    let mut out = format!("unfired faults ({}):\n", unfired.len());
    for f in &unfired {
        out.push_str(&format!("  {f:?}\n"));
    }
    out.push_str(&format!(
        "estimator trajectory ({} steps):\n",
        adaptation.len()
    ));
    for s in adaptation {
        out.push_str(&format!(
            "  job {:>2}: rate {:.4} interval {:?} switched {}\n",
            s.job, s.rate, s.interval, s.switched
        ));
    }
    match cl.take_blackbox("chain") {
        Some(dump) => out.push_str(&dump.render()),
        None => out.push_str("no blackbox dump parked (chain did not die with a typed error)\n"),
    }
    out
}

/// The closed-loop strategy under full-shape chaos — a kill, shuffle
/// flakes and replica corruption across the 7-job chain. Converges to
/// the golden digest; any divergence dumps the unfired-fault list and
/// the estimator trajectory so the failure is triageable from the log
/// alone.
#[test]
fn adaptive_hybrid_soaks_through_mixed_chaos() {
    use rcmp::core::SplitPolicy;
    use rcmp::policy::AdaptConfig;

    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
    injector.add_fault(FaultTrigger {
        seq: 2,
        point: TriggerPoint::JobStart,
        fault: Fault::NodeCrash(NodeId(1)),
    });
    injector.add_fault(FaultTrigger {
        seq: 4,
        point: TriggerPoint::JobStart,
        fault: Fault::ShuffleFlake {
            node: NodeId(0),
            times: 2,
        },
    });
    injector.add_fault(FaultTrigger {
        seq: 5,
        point: TriggerPoint::JobStart,
        fault: Fault::CorruptReplica { node: NodeId(3) },
    });
    let strategy = Strategy::AdaptiveHybrid {
        split: SplitPolicy::Fixed(4),
        factor: 2,
        adapt: AdaptConfig {
            prior_rate: 0.3,
            horizon: JOBS,
            ..AdaptConfig::default_for(NODES)
        },
        reclaim: false,
    };
    let as_dyn: Arc<dyn rcmp::engine::FailureInjector> = Arc::clone(&injector) as _;
    match ChainDriver::new(&cl, strategy)
        .with_injector(as_dyn)
        .run(&chain.jobs)
    {
        Ok(outcome) => {
            assert_eq!(
                outcome.adaptation.len(),
                JOBS as usize,
                "one trajectory step per chain job\n{}",
                soak_diagnostics(&cl, &injector, &outcome.adaptation)
            );
            // The kill at job 2 must be visible to the estimator.
            assert!(
                outcome.adaptation[1].rate > outcome.adaptation[0].rate,
                "the job-2 kill never reached the estimator\n{}",
                soak_diagnostics(&cl, &injector, &outcome.adaptation)
            );
            let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                .unwrap()
                .0;
            assert_eq!(
                digest,
                expected,
                "adaptive soak diverged from golden\n{}",
                soak_diagnostics(&cl, &injector, &outcome.adaptation)
            );
        }
        Err(e) => panic!(
            "adaptive soak died with {e}\n{}",
            soak_diagnostics(&cl, &injector, &[])
        ),
    }
}

/// Elastic membership under chaos (ISSUE 8): a node crash forces
/// recomputation, and a scripted `NodeDrain` lands on the recovery
/// run while it is in flight. The drained node stops taking tasks but
/// keeps serving its replicas, so the chain still converges to the
/// exact golden digest — and the node ends the run `Draining`, not
/// dead.
#[test]
fn drain_during_recompute_converges_to_golden() {
    use rcmp::policy::NodeStatus;

    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    let injector = Arc::new(ScriptedInjector::default());
    // Seq 2 (job 2) dies at start → seq 3 is the recomputation of job
    // 1's lost partitions. Drain node 2 after that run's first map
    // wave: the strict injector check proves the drain really fired
    // mid-recompute.
    injector.add_fault(FaultTrigger {
        seq: 2,
        point: TriggerPoint::JobStart,
        fault: Fault::NodeCrash(NodeId(1)),
    });
    injector.add_fault(FaultTrigger {
        seq: 3,
        point: TriggerPoint::AfterMapWave(0),
        fault: Fault::NodeDrain { node: NodeId(2) },
    });
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert!(
        outcome.jobs_started > JOBS as u64,
        "the crash must force recovery runs, got {}",
        outcome.jobs_started
    );
    let m = cl.membership();
    assert_eq!(m.status(2), Some(NodeStatus::Draining), "still draining");
    assert_eq!(m.status(1), Some(NodeStatus::Dead));
    assert!(
        !cl.schedulable_nodes().contains(&NodeId(2)),
        "a draining node takes no new tasks"
    );
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, expected, "drain mid-recompute changed the output");
}

/// Randomized chaos with graceful drains mixed in (`with_drains`): the
/// binary contract holds — golden digest or a typed recovery error.
#[test]
fn drain_chaos_converges_or_fails_typed() {
    let expected = golden();
    for chaos_seed in [7u64, 1234, 99_999, 424_242] {
        let cl = cluster();
        let chain = setup(&cl);
        let injector = Arc::new(
            RandomizedInjector::new(chaos_seed, NODES)
                .kill_probability(0.08)
                .fault_probability(0.3)
                .max_kills(1)
                .max_other_faults(6)
                .with_drains(),
        );
        match ChainDriver::new(&cl, Strategy::rcmp_split(3))
            .with_injector(injector)
            .run(&chain.jobs)
        {
            Ok(_) => {
                let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                    .unwrap()
                    .0;
                assert_eq!(digest, expected, "seed {chaos_seed} wrong output");
            }
            Err(Error::RecoveryExhausted { .. }) => {}
            Err(Error::DataLoss { ref path, .. }) if path == "input" => {}
            Err(e) => panic!("seed {chaos_seed}: expected golden or typed error, got {e}"),
        }
    }
}

/// Acceptance gate (ISSUE 8): all four placement kernels drive the
/// chaos-injected 7-job chain — a kill, transient flakes and a replica
/// corruption — to the same golden digest. Placement moves tasks;
/// contents must not move with them.
#[test]
fn every_placement_kernel_converges_chaos_chain_to_golden() {
    let expected = golden();
    for kernel in [
        PlacementKernel::Default,
        PlacementKernel::RackAware,
        PlacementKernel::Delay { rounds: 2 },
        PlacementKernel::CapacityWeighted,
    ] {
        let cl = Cluster::new(ClusterConfig {
            nodes: NODES,
            slots: SlotConfig::ONE_ONE,
            block_size: rcmp::model::ByteSize::kib(4),
            failure_detection_secs: 30.0,
            max_recovery_attempts: 100,
            executor: ExecutorConfig::from_env_or_default(),
            shuffle: Default::default(),
            retry: Default::default(),
            placement: kernel,
            chain_cache: Default::default(),
            seed: 23,
        });
        let chain = setup(&cl);
        let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
        injector.add_fault(FaultTrigger {
            seq: 2,
            point: TriggerPoint::JobStart,
            fault: Fault::NodeCrash(NodeId(1)),
        });
        injector.add_fault(FaultTrigger {
            seq: 4,
            point: TriggerPoint::JobStart,
            fault: Fault::ShuffleFlake {
                node: NodeId(0),
                times: 2,
            },
        });
        injector.add_fault(FaultTrigger {
            seq: 5,
            point: TriggerPoint::JobStart,
            fault: Fault::CorruptReplica { node: NodeId(3) },
        });
        let outcome = ChainDriver::new(&cl, Strategy::rcmp_split(3))
            .with_injector(injector)
            .run(&chain.jobs)
            .unwrap_or_else(|e| panic!("kernel {kernel:?} died with {e}"));
        assert!(
            outcome.jobs_started > JOBS as u64,
            "kernel {kernel:?}: the crash must force recovery runs"
        );
        let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0;
        assert_eq!(digest, expected, "kernel {kernel:?} diverged from golden");
    }
}

/// Decommission after a completed chain: the incremental rebalance
/// re-homes every replica the leaver held, so the persisted outputs —
/// and their lineage — survive byte-exact with the node gone.
#[test]
fn decommission_preserves_chain_output() {
    let expected = golden();
    let cl = cluster();
    let chain = setup(&cl);
    ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .run(&chain.jobs)
        .unwrap();
    let report = cl.decommission_node(NodeId(1)).unwrap();
    assert!(
        report.blocks_moved > 0,
        "node 1 held replicas that must re-home: {report:?}"
    );
    let live = cl.live_nodes();
    assert!(!live.contains(&NodeId(1)), "leaver no longer serves");
    let digest = digest_file(cl.dfs(), chain.final_output(), live[0])
        .unwrap()
        .0;
    assert_eq!(digest, expected, "decommission must not disturb outputs");
}

/// The driver's strict end-of-chain injector check: a scripted trigger
/// that never fires fails the run loudly instead of silently testing
/// nothing.
#[test]
fn unfired_scripted_trigger_fails_the_run() {
    let cl = cluster();
    let chain = setup(&cl);
    // Wave 40 of run 99 never happens in a failure-free 7-job chain.
    let injector = Arc::new(ScriptedInjector::single(
        99,
        TriggerPoint::AfterMapWave(40),
        NodeId(0),
    ));
    let err = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap_err();
    assert!(
        matches!(err, Error::Config(ref m) if m.contains("never fired")),
        "expected strict-injector Config error, got {err}"
    );
}
