//! Differential tests for the in-memory chain cache.
//!
//! The cache is a *pure read-through overlay* over the persisted DFS
//! path: every reducer output is still written through (checksummed,
//! replicated), so turning the cache on must be unobservable in
//! everything except where fault-free reads come from. Each test here
//! runs the cached path against its kept-alive oracle — the identical
//! chain with `chain_cache` disabled — and demands byte-identical
//! output digests; under the serial reactor (`async:1`) it also
//! demands the *exact same recovery event sequence*, fault schedules
//! included, because cache invalidation must never change which
//! partitions are lost, planned or recomputed.

use proptest::prelude::*;
use rcmp::core::{ChainDriver, EventLog, Strategy};
use rcmp::engine::failure::{Fault, FaultTrigger};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{
    ByteSize, ChainCacheConfig, ClusterConfig, Error, ExecutorConfig, NodeId, PlacementKernel,
    SlotConfig,
};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 4;
const JOBS: u32 = 4;

fn cluster(cache: ChainCacheConfig, placement: PlacementKernel) -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        // The serial reactor is pinned so the recovery event sequence
        // is exactly replayable even when a fault kills a node mid-wave
        // (see `serial_reactor_replays_full_chaos_exactly`).
        executor: ExecutorConfig::async_workers(1),
        shuffle: Default::default(),
        retry: Default::default(),
        placement,
        chain_cache: cache,
        seed: 23,
    })
}

/// Runs the chain with one scripted fault, returning the outcome
/// status (digest on convergence, error text otherwise) plus the
/// recovery event log, and the `cache.hits` counter.
fn faulted_run(
    cache: ChainCacheConfig,
    placement: PlacementKernel,
    fault: Option<FaultTrigger>,
) -> (String, Option<EventLog>, u64) {
    let cl = cluster(cache, placement);
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 8_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    let mut driver = ChainDriver::new(&cl, Strategy::rcmp_split(2));
    if let Some(trigger) = fault {
        let injector = Arc::new(ScriptedInjector::default());
        injector.add_fault(trigger);
        driver = driver.with_injector(injector);
    }
    let (status, events) = match driver.run(&chain.jobs) {
        Ok(outcome) => {
            let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                .unwrap()
                .0;
            (format!("{digest:?}"), Some(outcome.events))
        }
        Err(Error::RecoveryExhausted { .. }) => ("exhausted".to_string(), None),
        Err(e) => panic!("unexpected error {e}"),
    };
    let hits = cl
        .metrics()
        .snapshot()
        .counter("cache.hits")
        .unwrap_or(0);
    (status, events, hits)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Cache on vs. cache off under one scripted mid-chain fault — a
    /// node crash, a silent replica corruption or a graceful drain,
    /// firing at job start or after the first map wave — with the
    /// budget swept from smaller-than-one-partition (pure
    /// spill-through) to everything-fits. Identical digests, identical
    /// event logs, every time: invalidation and spills must be
    /// bookkeeping-only.
    #[test]
    fn cache_is_invisible_under_scripted_faults(
        fault_sel in 0u8..3,
        point_sel in 0u8..2,
        seq in 2u64..=JOBS as u64,
        node in 0u32..NODES,
        budget_kib in 1u64..512,
    ) {
        let fault = match fault_sel {
            0 => Fault::NodeCrash(NodeId(node)),
            1 => Fault::CorruptReplica { node: NodeId(node) },
            _ => Fault::NodeDrain { node: NodeId(node) },
        };
        let point = match point_sel {
            0 => TriggerPoint::JobStart,
            _ => TriggerPoint::AfterMapWave(0),
        };
        let trigger = FaultTrigger { seq, point, fault };
        let (off, off_events, off_hits) = faulted_run(
            ChainCacheConfig::default(),
            PlacementKernel::Default,
            Some(trigger),
        );
        let (on, on_events, _) = faulted_run(
            ChainCacheConfig::enabled(ByteSize::kib(budget_kib)),
            PlacementKernel::Default,
            Some(trigger),
        );
        prop_assert_eq!(off_hits, 0, "cache-off oracle must never hit");
        prop_assert_eq!(&off, &on, "outcome diverged with cache on");
        prop_assert_eq!(
            off_events, on_events,
            "recovery event sequence diverged with cache on"
        );
    }
}

/// The `stable` placement kernel reading from a warm cache against the
/// cache-off `Default` oracle, fault-free: byte-identical digest while
/// every post-first-job map input is served from memory, node-locally.
#[test]
fn stable_kernel_matches_default_oracle_fault_free() {
    let (off, _, off_hits) =
        faulted_run(ChainCacheConfig::default(), PlacementKernel::Default, None);
    let (on, _, on_hits) = faulted_run(
        ChainCacheConfig::enabled(ByteSize::mib(64)),
        PlacementKernel::Stable,
        None,
    );
    assert_eq!(off, on, "stable+cache diverged from default+no-cache");
    assert_eq!(off_hits, 0);
    assert!(on_hits > 0, "a 64 MiB budget must serve hits on this chain");
}

/// Fault-free with one block per partition — tasks, partitions and
/// nodes in 1:1:1 correspondence — the partition-affine claim runs
/// before every other rule, so *every* cached read lands on its
/// holder. (With multi-block partitions, block-count skew lets idle
/// nodes steal a holder's tail blocks, so 100% locality is only a
/// contract in the balanced case; the bench measures the skewed one.)
#[test]
fn stable_kernel_is_fully_local_on_balanced_partitions() {
    let cl = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        // 8k test records over 4 partitions ≈ 224 KiB each: one 1 MiB
        // block per partition.
        block_size: ByteSize::mib(1),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: ExecutorConfig::async_workers(1),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: PlacementKernel::Stable,
        chain_cache: ChainCacheConfig::enabled(ByteSize::mib(64)),
        seed: 23,
    });
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 8_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .run(&chain.jobs)
        .unwrap();
    let snap = cl.metrics().snapshot();
    let hits = snap.counter("cache.hits").unwrap_or(0);
    let local = snap.counter("cache.hits_local").unwrap_or(0);
    assert_eq!(
        hits,
        u64::from((JOBS - 1) * NODES),
        "every post-first-job map input must be served from memory"
    );
    assert_eq!(
        local, hits,
        "every balanced fault-free stable-kernel hit must be node-local"
    );
}

/// A crash mid-chain under the `stable` kernel: the dead node's cached
/// partitions are invalidated, the affected mappers fall back to the
/// DFS replicas / recomputation, and the digest still matches the
/// cache-off `Default` oracle exactly.
#[test]
fn stable_kernel_survives_crash_to_oracle_digest() {
    for node in 0..NODES {
        let trigger = FaultTrigger {
            seq: 2,
            point: TriggerPoint::AfterMapWave(0),
            fault: Fault::NodeCrash(NodeId(node)),
        };
        let (off, _, _) = faulted_run(
            ChainCacheConfig::default(),
            PlacementKernel::Default,
            Some(trigger),
        );
        let (on, _, _) = faulted_run(
            ChainCacheConfig::enabled(ByteSize::mib(64)),
            PlacementKernel::Stable,
            Some(trigger),
        );
        assert_eq!(
            off, on,
            "crash of node {node}: stable+cache diverged from oracle"
        );
    }
}
