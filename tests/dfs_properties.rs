//! Property-based testing of the DFS substrate: arbitrary operation
//! sequences must preserve the system invariants.

use bytes::Bytes;
use proptest::prelude::*;
use rcmp::dfs::{Dfs, DfsConfig, PlacementPolicy};
use rcmp::model::{ByteSize, NodeId, PartitionId};

const NODES: u32 = 6;

#[derive(Clone, Debug)]
enum Op {
    Write {
        pid: u8,
        bytes: u16,
        writer: u8,
        spread: bool,
    },
    Clear {
        pid: u8,
    },
    Fail {
        node: u8,
    },
    Replicate {
        factor: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u16..600, 0u8..NODES as u8, any::<bool>()).prop_map(
            |(pid, bytes, writer, spread)| Op::Write {
                pid,
                bytes,
                writer,
                spread,
            }
        ),
        (0u8..4).prop_map(|pid| Op::Clear { pid }),
        (0u8..NODES as u8).prop_map(|node| Op::Fail { node }),
        (1u8..4).prop_map(|factor| Op::Replicate { factor }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Invariants after any op sequence:
    /// 1. metadata and stores agree on byte totals (no leaks);
    /// 2. a partition not reported lost is readable and round-trips;
    /// 3. replicas are always distinct live-or-dead nodes;
    /// 4. failing every node loses every written non-empty partition.
    #[test]
    fn random_op_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let dfs = Dfs::new(DfsConfig::new(NODES, ByteSize::bytes(128)));
        dfs.create_file("f", 1, 4).unwrap();
        let mut expected: Vec<Option<Vec<u8>>> = vec![None; 4];

        for op in &ops {
            match *op {
                Op::Write { pid, bytes, writer, spread } => {
                    let writer = NodeId(writer as u32);
                    if !dfs.is_alive(writer) {
                        continue;
                    }
                    let payload = vec![pid ^ 0x5a; bytes as usize];
                    let policy = if spread {
                        PlacementPolicy::Spread
                    } else {
                        PlacementPolicy::WriterLocal
                    };
                    // A prior Replicate may have raised the file's
                    // factor above the live-node count; writes then
                    // fail loudly and atomically — that is correct
                    // behaviour, not a test failure.
                    match dfs.write_partition_segment(
                        "f",
                        PartitionId(pid as u32),
                        Bytes::from(payload.clone()),
                        writer,
                        policy,
                    ) {
                        Ok(()) => match &mut expected[pid as usize] {
                            Some(v) => v.extend_from_slice(&payload),
                            none => *none = Some(payload),
                        },
                        Err(rcmp::model::Error::InsufficientReplicaTargets { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                    }
                }
                Op::Clear { pid } => {
                    dfs.clear_partition("f", PartitionId(pid as u32)).unwrap();
                    expected[pid as usize] = None;
                }
                Op::Fail { node } => {
                    let _ = dfs.fail_node(NodeId(node as u32));
                }
                Op::Replicate { factor } => {
                    // May legitimately fail (lost data / too few nodes).
                    let _ = dfs.replicate_file("f", factor as u32);
                }
            }
        }

        let meta = dfs.file_meta("f").unwrap();
        // Invariant 3: distinct replicas per block.
        for p in &meta.partitions {
            for b in p.blocks() {
                let mut r = b.replicas.clone();
                r.sort();
                r.dedup();
                prop_assert_eq!(r.len(), b.replicas.len(), "duplicate replicas");
                for &n in &r {
                    prop_assert!(dfs.is_alive(n), "metadata lists a dead replica");
                }
            }
        }
        // Invariant 2: non-lost written partitions round-trip.
        let reader = dfs.live_nodes().first().copied();
        if let Some(reader) = reader {
            for p in &meta.partitions {
                if p.is_written() && !p.is_lost() {
                    let data = dfs.read_partition("f", p.id, reader).unwrap();
                    let want = expected[p.id.index()].clone().unwrap_or_default();
                    prop_assert_eq!(data.as_ref(), &want[..], "partition {} content", p.id);
                }
            }
        }
        // Invariant 1: bytes stored = Σ block sizes × live replica count.
        let meta_bytes: u64 = meta
            .partitions
            .iter()
            .flat_map(|p| p.blocks())
            .map(|b| b.size.as_u64() * b.replicas.len() as u64)
            .sum();
        prop_assert_eq!(dfs.total_used().as_u64(), meta_bytes, "storage leak");
    }

    /// Failing all nodes loses everything written (and the report says so).
    #[test]
    fn total_cluster_loss_is_total(parts in prop::collection::vec(1u16..300, 1..4)) {
        let dfs = Dfs::new(DfsConfig::new(3, ByteSize::bytes(64)));
        dfs.create_file("f", 1, parts.len() as u32).unwrap();
        for (i, bytes) in parts.iter().enumerate() {
            dfs.write_partition_segment(
                "f",
                PartitionId(i as u32),
                Bytes::from(vec![1u8; *bytes as usize]),
                NodeId(i as u32 % 3),
                PlacementPolicy::WriterLocal,
            )
            .unwrap();
        }
        let mut all_lost = std::collections::BTreeSet::new();
        for n in 0..3 {
            let report = dfs.fail_node(NodeId(n));
            all_lost.extend(report.lost_in("f").iter().copied());
        }
        prop_assert_eq!(all_lost.len(), parts.len(), "every partition reported lost");
        prop_assert_eq!(dfs.total_used(), ByteSize::ZERO);
    }
}
