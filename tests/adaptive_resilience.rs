//! Closed-loop adaptive resilience end-to-end: trace-calibrated cold
//! starts, the engine's adaptive replication cadence, engine/simulator
//! decision parity through the shared `FaultObserver` kernel, and the
//! seeded retry backoff that replaces the old herd-prone flat retries.

use rcmp::core::{ChainDriver, ChainEvent, SplitPolicy, Strategy};
use rcmp::engine::failure::{Fault, FaultTrigger};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::rng::derive_indexed;
use rcmp::model::{ClusterConfig, NodeId, RetryPolicy, SlotConfig};
use rcmp::obs::{SnapshotValue, SpanKind};
use rcmp::policy::{optimal_interval, AdaptConfig, DynamicPolicy};
use rcmp::sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use rcmp::traces::{synthesize, TraceProfile, TraceStats};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 5,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 31,
    })
}

fn adaptive(adapt: AdaptConfig) -> Strategy {
    Strategy::AdaptiveHybrid {
        split: SplitPolicy::Fixed(4),
        factor: 2,
        adapt,
        reclaim: false,
    }
}

/// A failure-heavy regime: the cold start already replicates after
/// every job, so a mid-chain kill never reaches an unreplicated input.
fn hot() -> AdaptConfig {
    AdaptConfig {
        prior_rate: 0.5,
        prior_weight: 8.0,
        decay: 0.9,
        hysteresis: 0.25,
        horizon: 6,
        replicate_cost: 0.05,
        recompute_cost: 1.0,
        detect_cost: 0.5,
    }
}

/// The paper's moderate-cluster regime: failures so rare replication
/// never pays.
fn quiet() -> AdaptConfig {
    AdaptConfig {
        prior_rate: 0.0005,
        prior_weight: 16.0,
        horizon: 6,
        ..AdaptConfig::default_for(5)
    }
}

fn replication_points(outcome: &rcmp::core::ChainOutcome) -> Vec<u32> {
    outcome
        .events
        .iter()
        .filter_map(|e| match e {
            ChainEvent::ReplicationPoint { job, .. } => Some(job.raw()),
            _ => None,
        })
        .collect()
}

/// Satellite 2 — calibration round-trip: synthesizing a Fig.-2-style
/// failure trace, measuring it, and feeding the measurement back
/// through `from_trace_stats` recovers a break-even cadence consistent
/// with the profile's nominal failure intensity.
#[test]
fn calibration_round_trip_recovers_break_even_from_synth_traces() {
    let jobs_per_day = 4.0;
    let common_nodes = 10; // compare both profiles on one cluster size
    let mut break_evens = Vec::new();
    for (profile, nominal) in [(TraceProfile::stic(), 0.17), (TraceProfile::sugar(), 0.12)] {
        let trace = synthesize(&profile, 7);
        let stats = TraceStats::from_trace(&trace);
        assert!(
            (stats.failure_day_fraction - nominal).abs() < 0.05,
            "{}: measured failure-day fraction {} drifted from nominal {nominal}",
            profile.name,
            stats.failure_day_fraction
        );

        let measured = DynamicPolicy::from_trace_stats(
            stats.failure_day_fraction,
            jobs_per_day,
            common_nodes,
            1,
        );
        let ideal = DynamicPolicy::from_trace_stats(nominal, jobs_per_day, common_nodes, 1);
        let (m, i) = (
            measured.break_even_interval().expect("finite rate") as f64,
            ideal.break_even_interval().expect("finite rate") as f64,
        );
        assert!(
            (m - i).abs() / i < 0.35,
            "{}: break-even from measured trace ({m}) inconsistent with nominal ({i})",
            profile.name
        );

        // The adaptive loop's cold start is calibrated from the very
        // same statistic and agrees with the analytic argmin.
        let cfg = AdaptConfig::from_trace_stats(
            stats.failure_day_fraction,
            jobs_per_day,
            profile.nodes,
            1,
        );
        assert_eq!(cfg.prior_rate, measured.failure_prob_per_job);
        assert_eq!(
            cfg.cold_start_interval(),
            optimal_interval(cfg.prior_rate, cfg.horizon, &cfg)
        );
        break_evens.push(m);
    }
    assert!(
        break_evens[0] < break_evens[1],
        "STIC fails more often than SUG@R, so its cadence must be tighter: {break_evens:?}"
    );
}

/// A quiet prior places no replication points, and the closed loop
/// still publishes its full diagnostic surface: one trajectory step and
/// one `AdaptationPoint` span per job, plus the policy gauges.
#[test]
fn quiet_prior_places_no_points_and_exports_gauges() {
    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(6, 5).build();
    let outcome = ChainDriver::new(&cl, adaptive(quiet()))
        .run(&chain.jobs)
        .unwrap();
    assert!(
        replication_points(&outcome).is_empty(),
        "rare failures: the cost model never pays for replication"
    );
    assert_eq!(outcome.adaptation.len(), 6, "one step per chain job");
    assert!(
        outcome
            .adaptation
            .iter()
            .all(|s| s.interval.is_none() && !s.switched),
        "clean run at a quiet prior never leaves never-replicate: {:?}",
        outcome.adaptation
    );

    let snap = cl.metrics().snapshot();
    assert_eq!(
        snap.get("policy.k_current"),
        Some(&SnapshotValue::Gauge(0)),
        "0 encodes never-replicate"
    );
    match snap.get("policy.failure_rate_est") {
        Some(SnapshotValue::Gauge(ppm)) => assert!(
            (0..1000).contains(ppm),
            "estimate must stay near the quiet prior, got {ppm} ppm"
        ),
        other => panic!("policy.failure_rate_est gauge missing: {other:?}"),
    }

    let trace = cl.tracer().snapshot();
    let adapt_spans = trace
        .spans()
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::AdaptationPoint { .. }))
        .count();
    assert_eq!(adapt_spans, 6, "one AdaptationPoint span per completed job");
}

/// Under a hot prior the loop replicates aggressively, a mid-chain node
/// kill raises the online estimate, and the final output is exact.
#[test]
fn adaptive_hybrid_recovers_exactly_under_failure() {
    let reference = {
        let cl = cluster();
        generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
        let chain = ChainBuilder::new(6, 5).build();
        ChainDriver::new(&cl, Strategy::rcmp_no_split())
            .run(&chain.jobs)
            .unwrap();
        digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0
    };

    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(6, 5).build();
    let injector = Arc::new(ScriptedInjector::single(
        5,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(&cl, adaptive(hot()))
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();

    assert!(
        !replication_points(&outcome).is_empty(),
        "a hot prior must replicate"
    );
    let steps = &outcome.adaptation;
    assert_eq!(steps.last().unwrap().job, 6);
    assert!(
        steps[4].rate > steps[3].rate,
        "the kill during job 5 must raise the online estimate: {steps:?}"
    );
    assert!(
        steps.iter().all(|s| s.interval == Some(1)),
        "at this intensity the argmin cadence is every job: {steps:?}"
    );

    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, reference);
}

/// PR-3 invariant extended to the closed loop: the engine run and the
/// simulator run of the matched scenario — six jobs, one node kill at
/// job 5 — drive the shared kernel through identical fault/completion
/// sequences and therefore produce byte-identical adaptation
/// trajectories (every rate, interval and switch flag).
#[test]
fn engine_and_sim_share_one_adaptation_trajectory() {
    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(6, 5).build();
    let injector = Arc::new(ScriptedInjector::single(
        5,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(&cl, adaptive(hot()))
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();

    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / 8;
    wl.jobs = 6;
    let rep = simulate_chain(
        &ChainSimConfig::new(
            HwProfile::stic(),
            wl,
            Strategy::AdaptiveHybrid {
                split: SplitPolicy::Fixed(8),
                factor: 2,
                adapt: hot(),
                reclaim: false,
            },
        )
        .with_failures(vec![FailureAt::at_job(5, 9)]),
    );

    assert_eq!(
        outcome.adaptation, rep.adaptation,
        "engine and simulator must derive identical decision sequences from one kernel"
    );
}

/// Satellite 1 — the retry-herd regression. Concurrent failing fetch
/// sites all derive from ONE cluster seed yet get pairwise-distinct
/// backoff schedules, each attempt bounded by the exponential ceiling,
/// and everything replays bit-for-bit (no RNG state anywhere).
#[test]
fn one_seed_yields_distinct_backoff_schedules_per_site() {
    let retry = RetryPolicy::default();
    let cluster_seed = 23u64;
    // Eight concurrent reduce tasks: (job, partition) sites exactly as
    // the tracker derives them.
    let sites: Vec<u64> = (0..8u64)
        .map(|p| derive_indexed(cluster_seed, "shuffle-backoff", (1 << 32) | p))
        .collect();
    let schedules: Vec<Vec<u64>> = sites.iter().map(|&s| retry.schedule(s, 6)).collect();

    for (site, sched) in sites.iter().zip(&schedules) {
        assert_eq!(sched, &retry.schedule(*site, 6), "replay must be exact");
        for (i, &delay) in sched.iter().enumerate() {
            let ceiling = retry
                .max_backoff_ms
                .min(retry.base_backoff_ms << (i as u32).min(16));
            assert!(delay <= ceiling, "attempt {} over ceiling", i + 1);
        }
    }
    for i in 0..schedules.len() {
        for j in i + 1..schedules.len() {
            assert_ne!(
                schedules[i], schedules[j],
                "sites {i} and {j} share a backoff schedule — that is the retry herd"
            );
        }
    }
    assert!(
        RetryPolicy::no_backoff()
            .schedule(1, 6)
            .iter()
            .all(|&d| d == 0),
        "no_backoff must disable delays entirely"
    );
}

/// Transient shuffle flakes exercise the real backoff path: the
/// tracker sleeps its seeded delays and records every one in the
/// `retry.backoff_ms` histogram.
#[test]
fn shuffle_flakes_record_backoff_histogram() {
    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(2, 5).build();
    let injector = Arc::new(ScriptedInjector::default().tolerate_unfired());
    for node in [0u32, 2, 4] {
        injector.add_fault(FaultTrigger {
            seq: 1,
            point: TriggerPoint::JobStart,
            fault: Fault::ShuffleFlake {
                node: NodeId(node),
                times: 2,
            },
        });
    }
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    assert_eq!(
        outcome.jobs_started, 2,
        "flakes within the retry budget are absorbed in place"
    );
    match cl.metrics().snapshot().get("retry.backoff_ms") {
        Some(SnapshotValue::Histogram { total, .. }) => assert!(
            *total >= 6,
            "three flaky nodes x two transient failures each, got {total} observations"
        ),
        other => panic!("retry.backoff_ms histogram missing: {other:?}"),
    }
}

/// The simulator charges the same seeded backoff into its clock: a
/// cancelled job's retry is delayed, the delay is itemized in
/// `backoff_secs`, and disabling backoff removes exactly that time.
#[test]
fn sim_backoff_delays_are_itemized_in_the_report() {
    let strategy = || Strategy::Hybrid {
        split: SplitPolicy::Fixed(8),
        every_k: 0,
        factor: 2,
        reclaim: false,
    };
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / 8;
    wl.jobs = 4;
    let failures = vec![FailureAt::at_job(3, 0)];
    let heavy = RetryPolicy {
        base_backoff_ms: 64,
        max_backoff_ms: 512,
        ..RetryPolicy::default()
    };
    let with_backoff = simulate_chain(
        &ChainSimConfig::new(HwProfile::stic(), wl.clone(), strategy())
            .with_failures(failures.clone())
            .with_retry(heavy, 31),
    );
    let without = simulate_chain(
        &ChainSimConfig::new(HwProfile::stic(), wl, strategy())
            .with_failures(failures)
            .with_retry(RetryPolicy::no_backoff(), 31),
    );
    assert_eq!(without.backoff_secs, 0.0);
    assert!(
        with_backoff.backoff_secs > 0.0,
        "the cancelled job's retry must be delayed"
    );
    assert!(
        (with_backoff.total_time - without.total_time - with_backoff.backoff_secs).abs() < 1e-9,
        "backoff is the only difference between the runs: {} vs {} (+{})",
        with_backoff.total_time,
        without.total_time,
        with_backoff.backoff_secs
    );
}
