//! Property-based validation of the shared policy kernel (ISSUE 3): the
//! engine's and the simulator's wave-assignment adapters are two views
//! of ONE implementation, so over randomized clusters, slot counts and
//! replica layouts they must produce *identical* schedules — same wave
//! counts, same per-node task counts, same locality fractions.

use proptest::prelude::*;
use rcmp::dfs::BlockLocation;
use rcmp::engine::scheduler as eng;
use rcmp::engine::task::{MapTask, ReduceTask};
use rcmp::engine::MapInputKey;
use rcmp::model::PlacementKernel;
use rcmp::model::{BlockId, ByteSize, Error, JobId, MapTaskId, NodeId, PartitionId, ReduceTaskId};
use rcmp::policy::{
    expected_chain_time, optimal_interval, AdaptConfig, AdaptivePolicy, FaultObserver, Membership,
    PolicyCtx, ReduceAssignment,
};
use rcmp::sim::sched as sim;
use std::collections::BTreeMap;

/// Engine map task `idx` whose block replicas live on `holders`.
fn map_task(idx: usize, holders: &[u32]) -> MapTask {
    MapTask {
        id: MapTaskId::new(JobId(1), idx as u32),
        key: MapInputKey::new(JobId(1), PartitionId(0), idx as u32),
        block: BlockLocation {
            id: BlockId(idx as u64),
            size: ByteSize::mib(1),
            content_hash: 0,
            replicas: holders.iter().map(|&n| NodeId(n)).collect(),
        },
    }
}

/// Flattens engine map waves into `(wave, node, task_index)` triples,
/// recovering the task index from the block id.
fn flatten_engine(waves: &[Vec<(NodeId, MapTask)>]) -> Vec<(usize, u32, usize)> {
    waves
        .iter()
        .enumerate()
        .flat_map(|(w, wave)| {
            wave.iter()
                .map(move |(n, t)| (w, n.raw(), t.block.id.raw() as usize))
        })
        .collect()
}

fn flatten_sim(waves: &[Vec<(u32, usize)>]) -> Vec<(usize, u32, usize)> {
    waves
        .iter()
        .enumerate()
        .flat_map(|(w, wave)| wave.iter().map(move |&(n, t)| (w, n, t)))
        .collect()
}

fn per_node_counts(flat: &[(usize, u32, usize)]) -> BTreeMap<u32, usize> {
    flat.iter().fold(BTreeMap::new(), |mut m, &(_, n, _)| {
        *m.entry(n).or_insert(0) += 1;
        m
    })
}

/// Fraction of assignments whose node holds a replica of the task.
fn locality_fraction(flat: &[(usize, u32, usize)], layout: &[Vec<u32>]) -> f64 {
    if flat.is_empty() {
        return 1.0;
    }
    let local = flat
        .iter()
        .filter(|&&(_, n, t)| layout[t].contains(&n))
        .count();
    local as f64 / flat.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 50,
        ..ProptestConfig::default()
    })]

    /// Map scheduling: for random replica layouts the two adapters emit
    /// the exact same (wave, node, task) schedule.
    #[test]
    fn map_waves_agree(
        nodes in 1u32..12,
        slots in 1u32..4,
        raw_layout in prop::collection::vec(
            prop::collection::vec(0u32..12, 0usize..4),
            0usize..48,
        ),
    ) {
        // Clamp replica holders onto the live node range, dropping
        // duplicates but keeping order (first holder = primary).
        let layout: Vec<Vec<u32>> = raw_layout
            .iter()
            .map(|hs| {
                let mut seen = Vec::new();
                for &h in hs {
                    let n = h % nodes;
                    if !seen.contains(&n) {
                        seen.push(n);
                    }
                }
                seen
            })
            .collect();
        let live_sim: Vec<u32> = (0..nodes).collect();
        let live_eng: Vec<NodeId> = (0..nodes).map(NodeId).collect();

        let eng_tasks: Vec<MapTask> = layout
            .iter()
            .enumerate()
            .map(|(i, hs)| map_task(i, hs))
            .collect();
        let eng_waves =
            eng::assign_map_waves(eng_tasks, &live_eng, slots, PolicyCtx::disabled()).unwrap();
        let sim_waves = sim::assign_map_waves(
            layout.len(),
            &live_sim,
            slots,
            |t, n| layout[t].first() == Some(&n),
            |t, n| layout[t].contains(&n),
            PolicyCtx::disabled(),
        )
        .unwrap();

        let ef = flatten_engine(&eng_waves);
        let sf = flatten_sim(&sim_waves);
        prop_assert_eq!(eng_waves.len(), sim_waves.len(), "wave counts");
        prop_assert_eq!(
            per_node_counts(&ef),
            per_node_counts(&sf),
            "per-node task counts"
        );
        prop_assert_eq!(
            locality_fraction(&ef, &layout),
            locality_fraction(&sf, &layout),
            "locality fractions"
        );
        // Strongest form: one kernel ⇒ byte-identical schedules.
        prop_assert_eq!(ef, sf, "schedules");
    }

    /// Reduce scheduling agrees under both assignment styles.
    #[test]
    fn reduce_waves_agree(
        nodes in 1u32..12,
        slots in 1u32..4,
        parts in prop::collection::vec(0u32..40, 0usize..48),
        balance in prop::bool::ANY,
    ) {
        let style = if balance {
            ReduceAssignment::Balance
        } else {
            ReduceAssignment::RoundRobinByPartition
        };
        let live_sim: Vec<u32> = (0..nodes).collect();
        let live_eng: Vec<NodeId> = (0..nodes).map(NodeId).collect();

        let eng_tasks: Vec<ReduceTask> = parts
            .iter()
            .map(|&p| ReduceTask::new(ReduceTaskId::whole(JobId(1), PartitionId(p))))
            .collect();
        let eng_waves =
            eng::assign_reduce_waves(eng_tasks, &live_eng, slots, style, PolicyCtx::disabled())
                .unwrap();
        let sim_waves = sim::assign_reduce_waves(
            parts.len(),
            &live_sim,
            slots,
            style,
            |t| parts[t] as usize,
            PolicyCtx::disabled(),
        )
        .unwrap();

        prop_assert_eq!(eng_waves.len(), sim_waves.len(), "wave counts");
        // Compare (wave, node, partition) triples: the engine returns
        // owned tasks, so the partition id is the common currency.
        let ef: Vec<(usize, u32, u32)> = eng_waves
            .iter()
            .enumerate()
            .flat_map(|(w, wave)| {
                wave.iter()
                    .map(move |(n, t)| (w, n.raw(), t.id.partition.raw()))
            })
            .collect();
        let parts_ref = &parts;
        let sf: Vec<(usize, u32, u32)> = sim_waves
            .iter()
            .enumerate()
            .flat_map(|(w, wave)| wave.iter().map(move |&(n, t)| (w, n, parts_ref[t])))
            .collect();
        prop_assert_eq!(ef, sf, "schedules");
    }

    /// Elastic membership churn (ISSUE 8): drive a shared membership
    /// through random join/drain/decommission/rejoin/crash transitions
    /// and re-derive map schedules at *every epoch* with each placement
    /// kernel — the engine and simulator adapters must stay
    /// byte-identical the whole way through.
    #[test]
    fn kernel_map_waves_agree_across_membership_churn(
        nodes in 2u32..10,
        slots in 1u32..4,
        kernel_sel in 0u8..5,
        delay_rounds in 0u32..4,
        churn in prop::collection::vec((0u8..5, 0u32..64), 1usize..12),
        raw_layout in prop::collection::vec(
            prop::collection::vec(0u32..16, 0usize..4),
            0usize..40,
        ),
        cache_sel in prop::collection::vec((any::<bool>(), 0u32..16), 0usize..40),
    ) {
        let kernel = match kernel_sel {
            0 => PlacementKernel::Default,
            1 => PlacementKernel::RackAware,
            2 => PlacementKernel::Delay { rounds: delay_rounds },
            3 => PlacementKernel::CapacityWeighted,
            _ => PlacementKernel::Stable,
        };
        let mut m = Membership::with_racks(nodes, 1 + nodes / 3);

        let check = |m: &Membership| -> Result<(), TestCaseError> {
            let live_sim = m.schedulable();
            let live_eng: Vec<NodeId> =
                live_sim.iter().copied().map(NodeId).collect();
            // Holders land on any known node, live or not.
            let layout: Vec<Vec<u32>> = raw_layout
                .iter()
                .map(|hs| {
                    let mut seen = Vec::new();
                    for &h in hs {
                        let n = h % m.len() as u32;
                        if !seen.contains(&n) {
                            seen.push(n);
                        }
                    }
                    seen
                })
                .collect();
            let eng_tasks: Vec<MapTask> = layout
                .iter()
                .enumerate()
                .map(|(i, hs)| map_task(i, hs))
                .collect();
            // Chain-cache affinity, identical on both sides (only the
            // Stable kernel reads it).
            let cached: Vec<Option<u32>> = (0..layout.len())
                .map(|t| match cache_sel.get(t) {
                    Some(&(true, n)) => Some(n % m.len() as u32),
                    _ => None,
                })
                .collect();
            let cached_eng: Vec<Option<NodeId>> =
                cached.iter().map(|o| o.map(NodeId)).collect();
            let eng = eng::assign_map_waves_kernel(
                eng_tasks, &live_eng, slots, kernel, m, &cached_eng, PolicyCtx::disabled(),
            );
            let sim = sim::assign_map_waves_kernel(
                layout.len(),
                &live_sim,
                slots,
                kernel,
                m,
                |t, n| layout[t].first() == Some(&n),
                |t, n| layout[t].contains(&n),
                |t| cached.get(t).copied().flatten(),
                PolicyCtx::disabled(),
            );
            match (eng, sim) {
                (Ok(e), Ok(s)) => {
                    prop_assert_eq!(
                        flatten_engine(&e),
                        flatten_sim(&s),
                        "schedules diverged at epoch {}",
                        m.epoch()
                    );
                }
                (Err(e), Err(s)) => {
                    prop_assert!(matches!(e, Error::NoLiveNodes));
                    prop_assert!(matches!(s, Error::NoLiveNodes));
                }
                (e, s) => prop_assert!(
                    false,
                    "one adapter failed at epoch {}: {e:?} vs {s:?}",
                    m.epoch()
                ),
            }
            Ok(())
        };

        check(&m)?;
        for &(op, target) in &churn {
            let t = target % m.len() as u32;
            // Failed transitions are typed no-ops; apply whatever lands.
            match op {
                0 => drop(m.drain(t)),
                1 => drop(m.rejoin(t)),
                2 => drop(m.decommission(t)),
                3 => drop(m.mark_dead(t)),
                _ => drop(m.join(1 + target % 4, target % 3)),
            }
            check(&m)?;
        }
    }

    /// Same churn property for reduce scheduling, both styles, all
    /// kernels.
    #[test]
    fn kernel_reduce_waves_agree_across_membership_churn(
        nodes in 2u32..10,
        slots in 1u32..4,
        kernel_sel in 0u8..4,
        balance in prop::bool::ANY,
        churn in prop::collection::vec((0u8..5, 0u32..64), 1usize..10),
        parts in prop::collection::vec(0u32..40, 0usize..40),
    ) {
        let kernel = match kernel_sel {
            0 => PlacementKernel::Default,
            1 => PlacementKernel::RackAware,
            2 => PlacementKernel::Delay { rounds: 2 },
            _ => PlacementKernel::CapacityWeighted,
        };
        let style = if balance {
            ReduceAssignment::Balance
        } else {
            ReduceAssignment::RoundRobinByPartition
        };
        let mut m = Membership::with_racks(nodes, 1 + nodes / 3);

        let check = |m: &Membership| -> Result<(), TestCaseError> {
            let live_sim = m.schedulable();
            let live_eng: Vec<NodeId> =
                live_sim.iter().copied().map(NodeId).collect();
            let eng_tasks: Vec<ReduceTask> = parts
                .iter()
                .map(|&p| ReduceTask::new(ReduceTaskId::whole(JobId(1), PartitionId(p))))
                .collect();
            let eng = eng::assign_reduce_waves_kernel(
                eng_tasks, &live_eng, slots, style, kernel, m, PolicyCtx::disabled(),
            );
            let sim = sim::assign_reduce_waves_kernel(
                parts.len(),
                &live_sim,
                slots,
                style,
                kernel,
                m,
                |t| parts[t] as usize,
                PolicyCtx::disabled(),
            );
            match (eng, sim) {
                (Ok(e), Ok(s)) => {
                    let ef: Vec<(usize, u32, u32)> = e
                        .iter()
                        .enumerate()
                        .flat_map(|(w, wave)| {
                            wave.iter()
                                .map(move |(n, t)| (w, n.raw(), t.id.partition.raw()))
                        })
                        .collect();
                    let parts_ref = &parts;
                    let sf: Vec<(usize, u32, u32)> = s
                        .iter()
                        .enumerate()
                        .flat_map(|(w, wave)| {
                            wave.iter().map(move |&(n, t)| (w, n, parts_ref[t]))
                        })
                        .collect();
                    prop_assert_eq!(ef, sf, "schedules diverged at epoch {}", m.epoch());
                }
                (Err(e), Err(s)) => {
                    prop_assert!(matches!(e, Error::NoLiveNodes));
                    prop_assert!(matches!(s, Error::NoLiveNodes));
                }
                (e, s) => prop_assert!(
                    false,
                    "one adapter failed at epoch {}: {e:?} vs {s:?}",
                    m.epoch()
                ),
            }
            Ok(())
        };

        check(&m)?;
        for &(op, target) in &churn {
            let t = target % m.len() as u32;
            match op {
                0 => drop(m.drain(t)),
                1 => drop(m.rejoin(t)),
                2 => drop(m.decommission(t)),
                3 => drop(m.mark_dead(t)),
                _ => drop(m.join(1 + target % 4, target % 3)),
            }
            check(&m)?;
        }
    }

    /// A fully-dead cluster is the same typed error everywhere.
    #[test]
    fn dead_cluster_agrees(tasks in 1usize..20) {
        let eng_tasks: Vec<MapTask> =
            (0..tasks).map(|i| map_task(i, &[0])).collect();
        let e = eng::assign_map_waves(eng_tasks, &[], 1, PolicyCtx::disabled()).unwrap_err();
        let s = sim::assign_map_waves(
            tasks,
            &[],
            1,
            |_, _| false,
            |_, _| false,
            PolicyCtx::disabled(),
        )
        .unwrap_err();
        prop_assert!(matches!(e, Error::NoLiveNodes));
        prop_assert!(matches!(s, Error::NoLiveNodes));
    }

    /// The adaptive cadence is the argmin of the analytic chain-time
    /// model, so it dominates every fixed cadence — any rate, chain
    /// length or cost mix (the guarantee `BENCH_resilience` documents).
    #[test]
    fn adaptive_cadence_dominates_every_fixed(
        rate_m in 0u32..1500,
        jobs in 1u32..40,
        replicate_m in 10u32..2000,
        recompute_m in 10u32..2000,
        detect_m in 0u32..3000,
    ) {
        // The vendored proptest has no float strategies; sample
        // millis and scale.
        let rate = f64::from(rate_m) / 1000.0;
        let cfg = AdaptConfig {
            horizon: jobs,
            replicate_cost: f64::from(replicate_m) / 1000.0,
            recompute_cost: f64::from(recompute_m) / 1000.0,
            detect_cost: f64::from(detect_m) / 1000.0,
            ..AdaptConfig::default_for(10)
        };
        let best = optimal_interval(rate, jobs, &cfg);
        let t_best = expected_chain_time(best, rate, jobs, &cfg);
        for k in (1..=jobs).map(Some).chain([None]) {
            let t = expected_chain_time(k, rate, jobs, &cfg);
            prop_assert!(
                t_best <= t + 1e-9,
                "argmin {best:?} ({t_best}) beaten by fixed {k:?} ({t}) at rate {rate}"
            );
        }
    }

    /// The closed loop through the `FaultObserver` seam: the engine
    /// reports a job's losses in one batch, the simulator one fault per
    /// `fail_node` — identical fault/completion sequences must yield
    /// byte-identical trajectories either way.
    #[test]
    fn adaptation_trajectories_agree_across_observers(
        faults in prop::collection::vec(0u32..3, 1usize..60),
        prior_m in 0u32..800,
        hysteresis_m in 0u32..600,
    ) {
        let cfg = AdaptConfig {
            prior_rate: f64::from(prior_m) / 1000.0,
            hysteresis: f64::from(hysteresis_m) / 1000.0,
            ..AdaptConfig::default_for(8)
        };
        let mut engine_side = AdaptivePolicy::new(cfg);
        let mut sim_side = AdaptivePolicy::new(cfg);
        for &f in &faults {
            engine_side.record_fault(f);
            for _ in 0..f {
                sim_side.record_fault(1);
            }
            prop_assert_eq!(engine_side.job_completed(), sim_side.job_completed());
            prop_assert_eq!(
                engine_side.current_interval(),
                sim_side.current_interval()
            );
        }
        prop_assert_eq!(engine_side.trajectory(), sim_side.trajectory());
    }
}
