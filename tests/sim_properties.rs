//! Property-based sanity of the simulator's cost model: the qualitative
//! relations the paper's argument depends on must hold for arbitrary
//! (reasonable) configurations.

use proptest::prelude::*;
use rcmp::core::Strategy;
use rcmp::model::{ByteSize, SlotConfig};
use rcmp::sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};

fn wl(nodes: u32, jobs: u32, mib_per_node: u64, slots: u32) -> WorkloadCfg {
    WorkloadCfg {
        nodes,
        slots: SlotConfig::new(slots, slots),
        jobs,
        per_node_input: ByteSize::mib(mib_per_node),
        block_size: ByteSize::mib(128),
        num_reducers: nodes * slots,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Higher replication factors never make a failure-free chain
    /// faster — replication is pure overhead without failures (§III).
    #[test]
    fn replication_is_monotone_overhead(
        nodes in 4u32..12,
        jobs in 2u32..6,
        mib in 256u64..1024,
    ) {
        let w = wl(nodes, jobs, mib, 1);
        let t1 = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), Strategy::rcmp_no_split())).total_time;
        let t2 = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), Strategy::Replication { factor: 2 })).total_time;
        let t3 = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), Strategy::Replication { factor: 3 })).total_time;
        prop_assert!(t1 < t2, "factor 1 {t1} !< factor 2 {t2}");
        prop_assert!(t2 < t3, "factor 2 {t2} !< factor 3 {t3}");
    }

    /// More data never takes less time.
    #[test]
    fn time_monotone_in_input_size(nodes in 4u32..10, jobs in 2u32..5) {
        let small = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), wl(nodes, jobs, 256, 1), Strategy::rcmp_no_split())).total_time;
        let large = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), wl(nodes, jobs, 1024, 1), Strategy::rcmp_no_split())).total_time;
        prop_assert!(large > small, "{large} !> {small}");
    }

    /// A failure never makes the chain faster, for any strategy.
    #[test]
    fn failures_never_speed_things_up(
        nodes in 5u32..10,
        fail_seq in 1u64..5,
        strat in 0u8..4,
    ) {
        let strategy = match strat {
            0 => Strategy::rcmp_no_split(),
            1 => Strategy::rcmp_split(4),
            2 => Strategy::Replication { factor: 2 },
            _ => Strategy::Optimistic,
        };
        let w = wl(nodes, 5, 512, 1);
        let clean = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), strategy)).total_time;
        let failed = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), strategy)
            .with_failures(vec![FailureAt::at_job(fail_seq, nodes - 1)])).total_time;
        prop_assert!(
            failed >= clean,
            "{strategy:?}: failure at {fail_seq} sped up {clean} -> {failed}"
        );
    }

    /// RCMP with splitting is never slower than without, under a
    /// single failure (it strictly helps or ties).
    #[test]
    fn splitting_never_hurts(nodes in 5u32..10, fail_seq in 2u64..6) {
        let w = wl(nodes, 5, 512, 1);
        let no_split = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), Strategy::rcmp_no_split())
            .with_failures(vec![FailureAt::at_job(fail_seq, nodes - 1)])).total_time;
        let split = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), Strategy::rcmp_split(nodes - 1))
            .with_failures(vec![FailureAt::at_job(fail_seq, nodes - 1)])).total_time;
        prop_assert!(
            split <= no_split * 1.02,
            "split {split} should not exceed no-split {no_split}"
        );
    }

    /// Volume conservation: with 1:1:1 ratios, map input = shuffle =
    /// output, and nothing is replicated at factor 1.
    #[test]
    fn volume_conservation(nodes in 4u32..10, jobs in 1u32..4, mib in 256u64..768) {
        let w = wl(nodes, jobs, mib, 1);
        let rep = simulate_chain(&ChainSimConfig::new(
            HwProfile::stic(), w.clone(), Strategy::rcmp_no_split()));
        for run in &rep.runs {
            let input = run.io.map_input_local + run.io.map_input_remote;
            let shuffle = run.io.shuffle_local + run.io.shuffle_remote;
            prop_assert_eq!(input, w.total_input().as_u64());
            prop_assert_eq!(shuffle, input);
            // Reducer integer division may shave at most one byte per task.
            let out = run.io.output_written;
            prop_assert!(input - out <= run.reduce_tasks_run as u64 * w.num_reducers as u64);
            prop_assert_eq!(run.io.replication_written, 0);
        }
    }
}
