//! Property-based failure testing: under *any* scripted failure pattern
//! and strategy, the chain's final output digest must equal the
//! failure-free reference, and RCMP must never restart the chain.

use proptest::prelude::*;
use rcmp::core::strategy::HotspotMitigation;
use rcmp::core::{ChainDriver, SplitPolicy, Strategy};
use rcmp::engine::failure::Trigger;
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ClusterConfig, NodeId, SlotConfig};
use rcmp::workloads::checksum::{digest_file, OutputDigest};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 3;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 11,
    })
}

fn setup(cl: &Cluster) -> rcmp::workloads::ChainSpec {
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 15_000)).unwrap();
    ChainBuilder::new(JOBS, NODES).build()
}

fn reference() -> OutputDigest {
    let cl = cluster();
    let chain = setup(&cl);
    ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .run(&chain.jobs)
        .unwrap();
    digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0
}

fn point_from(code: u8) -> TriggerPoint {
    match code % 3 {
        0 => TriggerPoint::JobStart,
        1 => TriggerPoint::AfterMapWave(0),
        _ => TriggerPoint::AfterReduceWave(0),
    }
}

fn strategy_from(code: u8) -> Strategy {
    match code % 5 {
        0 => Strategy::rcmp_no_split(),
        1 => Strategy::rcmp_split(3),
        2 => Strategy::Rcmp {
            split: SplitPolicy::Survivors,
            hotspot: HotspotMitigation::SplitReducers,
        },
        3 => Strategy::Rcmp {
            split: SplitPolicy::None,
            hotspot: HotspotMitigation::SpreadOutput,
        },
        _ => Strategy::Optimistic,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 20,
        ..ProptestConfig::default()
    })]

    /// One failure at a random point under a random strategy.
    #[test]
    fn single_random_failure_preserves_output(
        seq in 1u64..=JOBS as u64,
        point_code in 0u8..3,
        node in 0u32..NODES,
        strat_code in 0u8..5,
    ) {
        let expected = reference();
        let cl = cluster();
        let chain = setup(&cl);
        let injector = Arc::new(ScriptedInjector::single(
            seq,
            point_from(point_code),
            NodeId(node),
        ));
        let strategy = strategy_from(strat_code);
        let outcome = ChainDriver::new(&cl, strategy)
            .with_injector(injector)
            .run(&chain.jobs)
            .unwrap();
        if !matches!(strategy, Strategy::Optimistic) {
            prop_assert_eq!(outcome.restarts, 0, "RCMP never restarts the chain");
        }
        let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0;
        prop_assert_eq!(digest, expected);
    }

    /// Two failures (possibly nested, possibly the same job) under RCMP.
    #[test]
    fn double_random_failure_preserves_output(
        seq1 in 1u64..=JOBS as u64,
        seq2 in 1u64..=(JOBS as u64 + 3),
        p1 in 0u8..3,
        p2 in 0u8..3,
        nodes in prop::sample::subsequence((0..NODES).collect::<Vec<u32>>(), 2),
        split in prop::bool::ANY,
    ) {
        let expected = reference();
        let cl = cluster();
        let chain = setup(&cl);
        // The second trigger's run may never happen (the chain can
        // finish first), so opt out of the strict unfired check.
        let injector = Arc::new(ScriptedInjector::new([
            Trigger { seq: seq1, point: point_from(p1), node: NodeId(nodes[0]) },
            Trigger { seq: seq1 + seq2, point: point_from(p2), node: NodeId(nodes[1]) },
        ]).tolerate_unfired());
        let strategy = if split {
            Strategy::rcmp_split(3)
        } else {
            Strategy::rcmp_no_split()
        };
        let outcome = ChainDriver::new(&cl, strategy)
            .with_injector(injector)
            .run(&chain.jobs)
            .unwrap();
        prop_assert_eq!(outcome.restarts, 0);
        let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0;
        prop_assert_eq!(digest, expected);
    }
}

/// Planner sufficiency + minimality, checked against live state: every
/// planned partition is currently lost (no spurious work), and after
/// executing the plan the target job completes.
#[test]
fn planned_partitions_are_exactly_lost_ones() {
    use rcmp::core::planner::plan_recovery;
    use rcmp::core::JobGraph;

    let cl = cluster();
    let chain = setup(&cl);
    let driver = ChainDriver::new(&cl, Strategy::rcmp_no_split());
    // Run first two jobs, then kill a node.
    let graph = JobGraph::new(chain.jobs.iter().cloned()).unwrap();
    let _ = driver; // driver not used further; run jobs manually
    let tracker = rcmp::engine::JobTracker::new(&cl, Arc::new(rcmp::engine::NoFailures));
    for (i, spec) in chain.jobs.iter().take(2).enumerate() {
        tracker
            .run(&rcmp::engine::JobRun::full(spec.clone()), (i + 1) as u64)
            .unwrap();
    }
    cl.fail_node(NodeId(1));

    let plan = plan_recovery(
        &cl,
        &graph,
        rcmp::model::JobId(3),
        SplitPolicy::None,
        HotspotMitigation::None,
    )
    .unwrap();

    for step in &plan.steps {
        let spec = graph.spec(step.job).unwrap();
        let lost: std::collections::BTreeSet<_> = cl
            .dfs()
            .file_meta(&spec.output)
            .unwrap()
            .lost_partitions()
            .into_iter()
            .collect();
        for p in &step.instructions.partitions {
            assert!(
                lost.contains(p),
                "planned partition {p} of {} is not lost",
                spec.output
            );
        }
    }
}
