//! Fuzz-style property tests of the record codec and digests: no input
//! may panic the decoder, round-trips are exact, digests are sound.

use bytes::Bytes;
use proptest::prelude::*;
use rcmp::model::hash::hash_bytes;
use rcmp::model::{Record, RecordReader, RecordWriter};
use rcmp::workloads::md5::{md5, to_hex};
use rcmp::workloads::OutputDigest;

fn record_strategy() -> impl Strategy<Value = Record> {
    (any::<u64>(), prop::collection::vec(any::<u8>(), 0..200)).prop_map(|(k, v)| Record::new(k, v))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    /// Encode → decode is the identity for any record sequence.
    #[test]
    fn roundtrip_exact(records in prop::collection::vec(record_strategy(), 0..50)) {
        let mut w = RecordWriter::new();
        for r in &records {
            w.push(r);
        }
        let decoded = RecordReader::decode_all(w.finish()).unwrap();
        prop_assert_eq!(decoded, records);
    }

    /// The decoder never panics on arbitrary bytes — it returns records
    /// or a codec error.
    #[test]
    fn decoder_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RecordReader::decode_all(Bytes::from(garbage));
    }

    /// Truncating a valid stream anywhere inside the payload yields an
    /// error, never silent truncation of a record.
    #[test]
    fn truncation_is_detected(
        records in prop::collection::vec(record_strategy(), 1..10),
        cut_back in 1usize..12,
    ) {
        let mut w = RecordWriter::new();
        for r in &records {
            w.push(r);
        }
        let full = w.finish();
        let cut = full.len().saturating_sub(cut_back);
        if cut == 0 {
            return Ok(());
        }
        match RecordReader::decode_all(full.slice(0..cut)) {
            // Either an explicit codec error…
            Err(_) => {}
            // …or the cut landed exactly on a record boundary, in which
            // case we get a strict prefix of the records.
            Ok(decoded) => {
                prop_assert!(decoded.len() < records.len());
                prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
            }
        }
    }

    /// Digest soundness: permutations agree, any single-record mutation
    /// disagrees.
    #[test]
    fn digest_permutation_invariant_and_mutation_sensitive(
        mut records in prop::collection::vec(record_strategy(), 1..20),
        flip in any::<u64>(),
    ) {
        let d1 = OutputDigest::of_records(&records);
        records.reverse();
        prop_assert_eq!(d1, OutputDigest::of_records(&records));
        // Mutate one record's key.
        let i = (flip % records.len() as u64) as usize;
        records[i].key = records[i].key.wrapping_add(1);
        prop_assert_ne!(d1, OutputDigest::of_records(&records));
    }

    /// Fingerprints: equal bytes → equal hash; an appended byte changes it.
    #[test]
    fn fingerprint_consistency(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let h = hash_bytes(&data);
        prop_assert_eq!(h, hash_bytes(&data.clone()));
        let mut longer = data.clone();
        longer.push(0);
        prop_assert_ne!(h, hash_bytes(&longer));
    }

    /// MD5 matches itself and differs under mutation (full RFC vectors
    /// are covered in the unit suite).
    #[test]
    fn md5_sanity(data in prop::collection::vec(any::<u8>(), 0..300), pos in any::<prop::sample::Index>()) {
        let d = md5(&data);
        prop_assert_eq!(to_hex(&d).len(), 32);
        prop_assert_eq!(d, md5(&data.clone()));
        if !data.is_empty() {
            let mut mutated = data.clone();
            let i = pos.index(mutated.len());
            mutated[i] ^= 0x01;
            prop_assert_ne!(md5(&mutated), d);
        }
    }
}
