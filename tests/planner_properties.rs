//! Property-based validation of the recomputation planner (DESIGN.md
//! validation #2): for random chain states and random damage, the plan
//! is **sufficient** (executing it restores the cancelled job's input)
//! and **grounded** (it never regenerates a partition that is intact).

use proptest::prelude::*;
use rcmp::core::planner::plan_recovery;
use rcmp::core::strategy::HotspotMitigation;
use rcmp::core::{JobGraph, SplitPolicy};
use rcmp::engine::{Cluster, JobRun, JobTracker, NoFailures, RunMode};
use rcmp::model::{ClusterConfig, JobId, NodeId, SlotConfig};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 3;

fn setup() -> (Cluster, rcmp::workloads::ChainSpec, JobGraph) {
    let cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 77,
    });
    generate_input(cluster.dfs(), &DataGenConfig::test("input", NODES, 12_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    let graph = JobGraph::new(chain.jobs.iter().cloned()).unwrap();
    (cluster, chain, graph)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 10,
        ..ProptestConfig::default()
    })]

    #[test]
    fn plans_are_sufficient_and_grounded(
        completed in 1u32..=JOBS,
        kills in prop::sample::subsequence((0..NODES).collect::<Vec<u32>>(), 1..3),
        split in prop::bool::ANY,
    ) {
        let (cluster, chain, graph) = setup();
        let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
        for j in 1..=completed {
            tracker
                .run(&JobRun::full(chain.job(j).clone()), j as u64)
                .unwrap();
        }
        for &k in &kills {
            let _ = cluster.fail_node(NodeId(k));
        }
        if cluster.live_nodes().is_empty() {
            return Ok(());
        }
        // Target: the first job not yet completed, or the last job.
        let target = JobId((completed + 1).min(JOBS));
        let policy = if split { SplitPolicy::Fixed(3) } else { SplitPolicy::None };
        // External-input loss is legitimately unrecoverable with 2 kills
        // of a 3-replicated input? (3 replicas survive 2 kills — plan
        // must succeed.)
        let plan = plan_recovery(&cluster, &graph, target, policy, HotspotMitigation::None)
            .expect("input is triple-replicated; planning must succeed");

        // Groundedness: every planned partition is currently damaged
        // (lost or unwritten).
        for step in &plan.steps {
            let spec = graph.spec(step.job).unwrap();
            let meta = cluster.dfs().file_meta(&spec.output).unwrap();
            for p in &step.instructions.partitions {
                let part = &meta.partitions[p.index()];
                prop_assert!(
                    part.is_lost() || !part.is_written(),
                    "planned {} of {} is intact",
                    p,
                    spec.output
                );
            }
        }

        // Sufficiency: execute the plan; afterwards the target job's
        // input file must be fully readable.
        for (i, step) in plan.steps.into_iter().enumerate() {
            let run = JobRun {
                spec: graph.spec(step.job).unwrap().clone(),
                mode: RunMode::Recompute(step.instructions),
                persist_map_outputs: true,
            };
            tracker.run(&run, 100 + i as u64).unwrap();
        }
        let input = &graph.spec(target).unwrap().input;
        if input != "input" {
            let meta = cluster.dfs().file_meta(input).unwrap();
            prop_assert!(meta.is_complete(), "target input incomplete after plan");
            prop_assert!(
                meta.lost_partitions().is_empty(),
                "target input still lost after plan"
            );
            // And actually readable end to end.
            let reader = cluster.live_nodes()[0];
            for p in &meta.partitions {
                cluster.dfs().read_partition(input, p.id, reader).unwrap();
            }
        }
    }
}
