//! The §IV-C future-work strategy end-to-end: dynamic replication
//! points driven by the expected-cost model, on both the real engine
//! and the simulator.

use rcmp::core::{ChainDriver, ChainEvent, DynamicPolicy, SplitPolicy, Strategy};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ClusterConfig, NodeId, SlotConfig};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 5,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp::model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp::model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 31,
    })
}

fn dynamic(failure_prob: f64, reclaim: bool) -> Strategy {
    Strategy::DynamicHybrid {
        split: SplitPolicy::Fixed(4),
        factor: 2,
        policy: DynamicPolicy {
            failure_prob_per_job: failure_prob,
            extra_replicas: 1,
            replication_byte_cost: 1.0,
            recompute_fraction: 0.2,
        },
        reclaim,
    }
}

fn replication_points(outcome: &rcmp::core::ChainOutcome) -> Vec<u32> {
    outcome
        .events
        .iter()
        .filter_map(|e| match e {
            ChainEvent::ReplicationPoint { job, .. } => Some(job.raw()),
            _ => None,
        })
        .collect()
}

#[test]
fn low_failure_rate_places_no_points() {
    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(6, 5).build();
    // The paper's moderate-cluster regime: failures days apart.
    let outcome = ChainDriver::new(&cl, dynamic(0.001, false))
        .run(&chain.jobs)
        .unwrap();
    assert!(
        replication_points(&outcome).is_empty(),
        "rare failures: the cost model never pays for replication"
    );
    assert_eq!(outcome.jobs_started, 6);
    assert_eq!(outcome.events.last_seq(), Some(6), "no extra runs logged");
    assert_eq!(outcome.events.recoveries().count(), 0);
}

#[test]
fn high_failure_rate_places_points_periodically() {
    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(6, 5).build();
    // Failure nearly every job: break-even interval = 1/(0.9*0.2) → 6…
    // use an extreme probability for interval 2.
    let outcome = ChainDriver::new(&cl, dynamic(2.5, false))
        .run(&chain.jobs)
        .unwrap();
    let points = replication_points(&outcome);
    assert!(
        points.len() >= 2,
        "heavy failures: points every ~2 jobs, got {points:?}"
    );
}

#[test]
fn dynamic_hybrid_recovers_correctly_under_failure() {
    let reference = {
        let cl = cluster();
        generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
        let chain = ChainBuilder::new(6, 5).build();
        ChainDriver::new(&cl, Strategy::rcmp_no_split())
            .run(&chain.jobs)
            .unwrap();
        digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0
    };

    let cl = cluster();
    generate_input(cl.dfs(), &DataGenConfig::test("input", 5, 15_000)).unwrap();
    let chain = ChainBuilder::new(6, 5).build();
    let injector = Arc::new(ScriptedInjector::single(
        5,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(&cl, dynamic(2.5, true))
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    // Points were placed, the cascade stayed above the last one, and
    // the final output is exact.
    let points = replication_points(&outcome);
    assert!(!points.is_empty());
    let last_point_before_failure = points.iter().copied().filter(|&j| j < 5).max();
    if let Some(p) = last_point_before_failure {
        // Neither the recomputation runs nor the recovery plans reach at
        // or below the point — its output is replicated.
        for e in outcome.events.iter() {
            if let ChainEvent::JobStarted {
                recompute: true,
                job,
                ..
            } = e
            {
                assert!(
                    job.raw() > p,
                    "cascade crossed the dynamic replication point at {p}"
                );
            }
        }
        assert!(
            outcome
                .events
                .recoveries()
                .all(|(target, _, _)| target.raw() > p),
            "recovery plan targeted a job at or below the point {p}"
        );
    }
    let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
        .unwrap()
        .0;
    assert_eq!(digest, reference);
}

#[test]
fn sim_dynamic_hybrid_matches_static_interval() {
    use rcmp::sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / 8;
    // Policy with break-even interval 2 behaves like Hybrid every_k=2.
    let policy = DynamicPolicy {
        failure_prob_per_job: 2.5,
        extra_replicas: 1,
        replication_byte_cost: 1.0,
        recompute_fraction: 0.2,
    };
    assert_eq!(policy.break_even_interval(), Some(2));
    let dynamic_run = simulate_chain(
        &ChainSimConfig::new(
            HwProfile::stic(),
            wl.clone(),
            Strategy::DynamicHybrid {
                split: SplitPolicy::Fixed(8),
                factor: 2,
                policy,
                reclaim: false,
            },
        )
        .with_failures(vec![FailureAt::at_job(6, 9)]),
    );
    let static_run = simulate_chain(
        &ChainSimConfig::new(
            HwProfile::stic(),
            wl.clone(),
            Strategy::Hybrid {
                split: SplitPolicy::Fixed(8),
                every_k: 2,
                factor: 2,
                reclaim: false,
            },
        )
        .with_failures(vec![FailureAt::at_job(6, 9)]),
    );
    assert!(
        (dynamic_run.total_time - static_run.total_time).abs() < 1e-6,
        "interval-2 dynamic policy ≡ every_k=2 hybrid: {} vs {}",
        dynamic_run.total_time,
        static_run.total_time
    );
}
