//! Multi-tenant job-service behaviour: admission backpressure,
//! fair-share scheduling, cross-tenant digest isolation under chaos,
//! and the 60-seed serve soak (every admitted chain converges to its
//! golden digest or a typed error; no tenant's faults corrupt another
//! tenant's bytes).
//!
//! The whole binary honours `RCMP_EXECUTOR` (the CI executor matrix
//! reruns it under `async:1` for exact-replay mode).

use proptest::prelude::*;
use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::{Cluster, Fault, FaultTrigger, ScriptedInjector, TriggerPoint};
use rcmp::model::rng::derive_indexed;
use rcmp::model::{ClusterConfig, Error, ExecutorConfig, NodeId, ServeConfig, TenantId};
use rcmp::obs::tenant_view;
use rcmp::policy::{DrrArbiter, TenantShare};
use rcmp::serve::soak::{run_scenario, SoakScenario, TenantLoad};
use rcmp::serve::{ChainRequest, JobService};
use rcmp::workloads::checksum::{digest_file, OutputDigest};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;
use std::sync::OnceLock;

fn test_config(nodes: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::small_test(nodes);
    cfg.executor = ExecutorConfig::from_env_or_default();
    cfg
}

const NODES: u32 = 6;
const PARTITIONS: u32 = 4;
const BYTES: u64 = 20_000;

fn make_input(cluster: &Cluster) {
    generate_input(
        cluster.dfs(),
        &DataGenConfig::test("input", PARTITIONS, BYTES),
    )
    .expect("input generation");
}

/// Golden digest of a `jobs`-job chain run solo on a pristine cluster.
fn solo_golden(jobs: u32) -> OutputDigest {
    let cluster = Cluster::new(test_config(NODES));
    make_input(&cluster);
    let chain = ChainBuilder::new(jobs, PARTITIONS).input("input").build();
    ChainDriver::new(&cluster, Strategy::rcmp_split(3))
        .run(&chain.jobs)
        .expect("solo chain converges");
    let reader = cluster.live_nodes()[0];
    digest_file(cluster.dfs(), chain.final_output(), reader)
        .expect("solo digest")
        .0
}

/// Two concurrent tenants, transient chaos (no node deaths) scripted on
/// tenant 0's chain: tenant 1's output must be byte-identical to its
/// solo run, and tenant 0 must still converge via recomputation.
#[test]
fn chaos_on_one_tenant_leaves_the_other_digest_golden() {
    let golden = solo_golden(2);

    let cluster = Arc::new(Cluster::new(test_config(NODES)));
    make_input(&cluster);
    let service = JobService::new(
        Arc::clone(&cluster),
        ServeConfig {
            queue_depth: 4,
            max_concurrent_chains: 2,
            worker_budget: 4,
            workers_per_chain: 2,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let (t0, t1) = (TenantId(0), TenantId(1));
    service.register_tenant(t0, TenantShare::minimal());
    service.register_tenant(t1, TenantShare::minimal());

    // Transient faults only: corruption and a shuffle flake recover via
    // recomputation without changing cluster membership, so tenant 1
    // cannot even be indirectly affected by node loss.
    let injector = ScriptedInjector::default().tolerate_unfired();
    injector.add_fault(FaultTrigger {
        seq: 1,
        point: TriggerPoint::AfterMapWave(0),
        fault: Fault::CorruptReplica { node: NodeId(1) },
    });
    injector.add_fault(FaultTrigger {
        seq: 2,
        point: TriggerPoint::MidReduceWave(0),
        fault: Fault::ShuffleFlake {
            node: NodeId(2),
            times: 1,
        },
    });

    let chain0 = ChainBuilder::new(2, PARTITIONS)
        .input("input")
        .namespace("t0/c0/", 100)
        .build();
    let chain1 = ChainBuilder::new(2, PARTITIONS)
        .input("input")
        .namespace("t1/c0/", 200)
        .build();
    let ticket0 = service
        .submit(
            ChainRequest::new(t0, chain0.jobs.clone(), Strategy::rcmp_split(3))
                .with_label("t0/c0")
                .with_injector(Arc::new(injector)),
        )
        .expect("t0 admitted");
    let ticket1 = service
        .submit(
            ChainRequest::new(t1, chain1.jobs.clone(), Strategy::rcmp_split(3)).with_label("t1/c0"),
        )
        .expect("t1 admitted");

    let r0 = ticket0.wait().expect("t0 resolves");
    let r1 = ticket1.wait().expect("t1 resolves");
    r0.outcome.expect("transient chaos is recoverable");
    r1.outcome.expect("undisturbed tenant completes");

    let reader = cluster.live_nodes()[0];
    let (d1, _) = digest_file(cluster.dfs(), chain1.final_output(), reader).expect("t1 digest");
    assert_eq!(
        d1, golden,
        "tenant 1's bytes diverged from its solo run under tenant 0's chaos"
    );
    let (d0, _) = digest_file(cluster.dfs(), chain0.final_output(), reader).expect("t0 digest");
    assert_eq!(d0, golden, "tenant 0's recomputed bytes diverged");

    // Per-tenant observability: the trace filters cleanly by tenant.
    let trace = cluster.tracer().snapshot();
    for (tenant, other) in [(t0, t1), (t1, t0)] {
        let view = tenant_view(&trace, tenant);
        assert!(
            !view.spans.is_empty(),
            "tenant {tenant} ran jobs, its view must not be empty"
        );
        let other_view = tenant_view(&view, other);
        assert!(
            other_view.spans.is_empty(),
            "tenant views must be disjoint: {tenant} view contained {other} runs"
        );
    }
}

/// Golden digest for the 2-job chain, computed once for the proptest.
fn golden_2job() -> OutputDigest {
    static GOLDEN: OnceLock<OutputDigest> = OnceLock::new();
    *GOLDEN.get_or_init(|| solo_golden(2))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Property: whatever transient fault schedule the seed derives for
    /// tenant 0's chain, tenant 1 — served concurrently on the same
    /// cluster — never silently diverges from its solo run. Shuffle
    /// flakes touch no storage, so flake-only schedules must leave both
    /// tenants converged and byte-golden. Replica corruption lands on a
    /// *node*, and on shared disks that node may hold the neighbour's
    /// blocks — the checksum then surfaces a typed loss on read. Wrong
    /// bytes behind a clean read are never acceptable.
    #[test]
    fn prop_chaos_tenant_never_perturbs_neighbor_bytes(chaos_seed in 0u64..1_000_000) {
        let golden = golden_2job();

        let cluster = Arc::new(Cluster::new(test_config(NODES)));
        make_input(&cluster);
        let service = JobService::new(
            Arc::clone(&cluster),
            ServeConfig {
                queue_depth: 4,
                max_concurrent_chains: 2,
                worker_budget: 4,
                workers_per_chain: 2,
                ..ServeConfig::default()
            },
        )
        .expect("service starts");
        let (t0, t1) = (TenantId(0), TenantId(1));
        service.register_tenant(t0, TenantShare::minimal());
        service.register_tenant(t1, TenantShare::minimal());

        // 1–3 seed-derived transient faults on tenant 0's chain. Some
        // derived (seq, point) pairs may not fire on a given schedule;
        // that only weakens the fault load, never the property.
        let injector = ScriptedInjector::default().tolerate_unfired();
        let mut corruption = false;
        let faults = 1 + chaos_seed % 3;
        for k in 0..faults {
            let node = NodeId((derive_indexed(chaos_seed, "node", k) % u64::from(NODES)) as u32);
            let point = match derive_indexed(chaos_seed, "point", k) % 4 {
                0 => TriggerPoint::JobStart,
                1 => TriggerPoint::MidMapWave(0),
                2 => TriggerPoint::AfterMapWave(0),
                _ => TriggerPoint::MidReduceWave(0),
            };
            let fault = if derive_indexed(chaos_seed, "kind", k).is_multiple_of(2) {
                corruption = true;
                Fault::CorruptReplica { node }
            } else {
                Fault::ShuffleFlake { node, times: 1 }
            };
            injector.add_fault(FaultTrigger {
                seq: 1 + derive_indexed(chaos_seed, "seq", k) % 2,
                point,
                fault,
            });
        }

        let chain0 = ChainBuilder::new(2, PARTITIONS)
            .input("input")
            .namespace("t0/c0/", 100)
            .build();
        let chain1 = ChainBuilder::new(2, PARTITIONS)
            .input("input")
            .namespace("t1/c0/", 200)
            .build();
        let ticket0 = service
            .submit(
                ChainRequest::new(t0, chain0.jobs.clone(), Strategy::rcmp_split(3))
                    .with_label("t0/c0")
                    .with_injector(Arc::new(injector)),
            )
            .expect("t0 admitted");
        let ticket1 = service
            .submit(
                ChainRequest::new(t1, chain1.jobs.clone(), Strategy::rcmp_split(3))
                    .with_label("t1/c0"),
            )
            .expect("t1 admitted");

        let r0 = ticket0.wait().expect("t0 resolves");
        let r1 = ticket1.wait().expect("t1 resolves");
        prop_assert!(r0.outcome.is_ok(), "seed {}: transient chaos must recover", chaos_seed);
        prop_assert!(r1.outcome.is_ok(), "seed {}: undisturbed tenant must complete", chaos_seed);

        let reader = cluster.live_nodes()[0];
        for (who, chain) in [("t0", &chain0), ("t1", &chain1)] {
            match digest_file(cluster.dfs(), chain.final_output(), reader) {
                Ok((d, _)) => prop_assert_eq!(
                    &d, &golden,
                    "seed {}: {}'s bytes silently diverged from golden", chaos_seed, who
                ),
                Err(Error::DataLoss { .. }) if corruption => {
                    // A corruption landed on this tenant's only output
                    // replica after its chain completed: the checksum
                    // detected it and the read failed typed. Detected
                    // loss, never silent divergence.
                }
                Err(e) => prop_assert!(
                    false,
                    "seed {}: {} digest read failed unexpectedly: {}", chaos_seed, who, e
                ),
            }
        }
    }
}

/// Over-offering a queue of depth 1 must produce the typed rejection
/// with a bounded seeded retry-after hint; unknown tenants are refused
/// outright (retrying cannot help them).
#[test]
fn admission_rejects_with_retry_hint_when_queue_overflows() {
    let cluster = Arc::new(Cluster::new(test_config(4)));
    make_input(&cluster);
    let cfg = ServeConfig {
        queue_depth: 1,
        max_concurrent_chains: 1,
        worker_budget: 2,
        workers_per_chain: 1,
        ..ServeConfig::default()
    };
    let service = JobService::new(Arc::clone(&cluster), cfg).expect("service starts");
    let tenant = TenantId(7);
    service.register_tenant(tenant, TenantShare::minimal());

    match service.submit(ChainRequest::new(
        TenantId(99),
        ChainBuilder::new(1, PARTITIONS).input("input").build().jobs,
        Strategy::rcmp_split(3),
    )) {
        Err(Error::Config(msg)) => assert!(msg.contains("not registered"), "got: {msg}"),
        Err(e) => panic!("unknown tenant must be refused with Config, got {e}"),
        Ok(_) => panic!("unknown tenant must be refused"),
    }

    let mut tickets = Vec::new();
    let mut rejections = 0u32;
    for i in 0..8u32 {
        let chain = ChainBuilder::new(1, PARTITIONS)
            .input("input")
            .namespace(format!("t7/c{i}/"), 100 + i * 10)
            .build();
        match service.submit(
            ChainRequest::new(tenant, chain.jobs, Strategy::rcmp_split(3))
                .with_label(format!("t7/c{i}")),
        ) {
            Ok(t) => tickets.push(t),
            Err(Error::AdmissionRejected {
                tenant: rejected_tenant,
                retry_after_ms,
            }) => {
                assert_eq!(rejected_tenant, tenant);
                assert!(
                    retry_after_ms <= cfg.retry.max_backoff_ms,
                    "hint {retry_after_ms} exceeds the backoff ceiling"
                );
                rejections += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(
        rejections > 0,
        "8 instant submissions against a depth-1 queue must overflow"
    );
    // The hint is the deterministic seeded schedule: recompute it.
    let expected_first = cfg.retry.backoff_ms(
        derive_indexed(cfg.seed, "admission", u64::from(tenant.raw())),
        1,
    );
    assert!(expected_first <= cfg.retry.max_backoff_ms);
    for t in tickets {
        t.wait()
            .expect("admitted chain resolves")
            .outcome
            .expect("no faults injected");
    }

    let snapshot = cluster.metrics().snapshot();
    assert!(
        snapshot.counter("serve.admitted").unwrap_or(0) >= 1,
        "serve.admitted must be published"
    );
    assert_eq!(
        snapshot.counter("serve.rejected"),
        Some(u64::from(rejections)),
        "serve.rejected must count every overflow"
    );
}

/// Bounded-wait proof over 64 seeded schedules: however heavy and
/// however costly the competing tenants' queues, a minimal-quota
/// tenant's first chain is granted within a fixed number of grants.
#[test]
fn fair_share_never_starves_minimal_tenant_64_schedules() {
    for seed in 0..64u64 {
        let mut arbiter = DrrArbiter::new(4);
        let minimal = TenantId(0);
        arbiter.register(minimal, TenantShare::minimal());
        // Two heavy tenants with seed-derived weights and chain costs.
        for t in 1..=2u32 {
            let weight = 1 + (derive_indexed(seed, "weight", u64::from(t)) % 8) as u32;
            arbiter.register(
                TenantId(t),
                TenantShare {
                    weight,
                    max_in_flight: 4,
                },
            );
            for c in 0..32u64 {
                let cost = 1 + derive_indexed(seed, "cost", u64::from(t) * 100 + c) % 8;
                assert!(arbiter.enqueue(TenantId(t), u64::from(t) * 1000 + c, cost));
            }
        }
        // The minimal tenant asks for one max-cost chain.
        assert!(arbiter.enqueue(minimal, 1, 8));

        let mut grants_before = 0u32;
        let mut granted = false;
        'wait: for _round in 0..64 {
            let grants = arbiter.next_grants(4);
            if grants.is_empty() {
                break;
            }
            for g in &grants {
                if g.tenant == minimal {
                    granted = true;
                    break 'wait;
                }
                grants_before += 1;
            }
            // Free every slot immediately: maximum competing pressure.
            for g in &grants {
                arbiter.complete(g.tenant);
            }
        }
        assert!(granted, "seed {seed}: minimal tenant never granted");
        assert!(
            grants_before <= 24,
            "seed {seed}: minimal tenant waited behind {grants_before} grants"
        );
    }
}

/// The balanced-quota scenario must be fair (Jain ≥ 0.9 over early
/// grants) with every digest verified golden.
#[test]
fn balanced_scenario_is_fair_and_byte_exact() {
    let report = run_scenario(&SoakScenario::balanced()).expect("scenario runs");
    assert_eq!(report.failed, 0, "no chaos: every chain completes");
    assert_eq!(report.digest_mismatches, 0);
    assert_eq!(
        report.digests_verified, report.completed,
        "every completed chain's output must be verifiable"
    );
    assert!(
        report.jain >= 0.9,
        "balanced quotas must schedule fairly, Jain = {}",
        report.jain
    );
    assert!(
        report.rejected_submissions > 0,
        "depth-2 queues under 18 round-robin submissions must exercise backpressure"
    );
}

/// 60-seed serve soak: two tenants, seeded chaos on one. Every admitted
/// chain either converges to the golden digest or surfaces a typed
/// error, and no seed ever corrupts the chaos-free tenant's bytes.
#[test]
fn serve_soak_60_seeds_golden_or_typed() {
    for seed in 0..60u64 {
        let mut sc = SoakScenario::chaos(0x5eed_0000 + seed);
        sc.name = format!("soak-{seed}");
        sc.nodes = 6;
        sc.bytes_per_partition = 10_000;
        sc.tenants = vec![
            TenantLoad {
                tenant: TenantId(0),
                share: TenantShare::minimal(),
                chains: 2,
                jobs_per_chain: 2,
                chaos: true,
            },
            TenantLoad {
                tenant: TenantId(1),
                share: TenantShare::minimal(),
                chains: 2,
                jobs_per_chain: 2,
                chaos: false,
            },
        ];
        let report = run_scenario(&sc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            report.digest_mismatches, 0,
            "seed {seed}: a recomputed chain diverged from golden"
        );
        assert_eq!(
            report.completed + report.failed,
            report.chains,
            "seed {seed}: every admitted chain must resolve"
        );
        // The chaos-free tenant may fail typed (shared nodes can die)
        // but must never produce wrong bytes — covered by the global
        // mismatch count, since every completed chain is digested.
    }
}
