//! Slice sampling and shuffling.

use crate::{Rng, RngCore};

/// `choose` / `shuffle` over slices (the subset of `rand::seq` used).
pub trait SliceRandom {
    type Item;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Fisher-Yates.
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));

        let mut s: Vec<u32> = (0..50).collect();
        s.shuffle(&mut rng);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(s, sorted, "50 elements virtually never shuffle to identity");
    }
}
