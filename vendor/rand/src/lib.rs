//! Offline stand-in for the `rand` crate.
//!
//! Implements the API surface this workspace uses — `SmallRng` seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`]'s
//! `choose`/`shuffle` — on top of a xoshiro256**-style generator.
//! Streams differ numerically from the real crate (seed-derived
//! experiments remain deterministic, just with a different universe of
//! draws), which this workspace tolerates by construction: every
//! consumer treats the stream as an opaque deterministic function of the
//! seed.

pub mod rngs;
pub mod seq;

/// Core random source: 64 raw bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly samplable primitive (stand-in for `Standard`-distribution
/// sampling).
pub trait Standard: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` via Lemire-style rejection.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        // Low product bits bias toward small residues below threshold.
        let (hi, lo) = {
            let m = (x as u128) * (bound as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = SmallRng::seed_from_u64(1).gen();
        let b: u64 = SmallRng::seed_from_u64(1).gen();
        let c: u64 = SmallRng::seed_from_u64(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
