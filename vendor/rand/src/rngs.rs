//! Small, fast, seedable generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256** — small-state, high-quality, deterministic.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn from_state_seed(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
        // as the xoshiro authors recommend.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_state_seed(seed)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias: the workspace never relies on StdRng/SmallRng differing.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_look_uniformish() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += (rng.next_u64() & 1) as u32;
        }
        assert!((400..600).contains(&ones), "bit bias: {ones}/1000");
    }
}
