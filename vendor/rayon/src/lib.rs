//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the `prelude` traits this workspace calls (`par_iter`,
//! `into_par_iter`) but executes sequentially: the "parallel" iterator
//! is the ordinary `std` iterator, so every adapter (`map`, `flat_map`,
//! `collect`, …) comes from `std::iter::Iterator`. Results are
//! bit-identical to a rayon run because all call sites are
//! order-independent reductions; only wall-clock parallelism is lost,
//! which the engine's own scoped-thread waves do not depend on.

pub mod prelude {
    /// `into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` — sequential stand-in over `&self`.
    pub trait IntoParallelRefIterator<'data> {
        type Iter;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
    }
}
