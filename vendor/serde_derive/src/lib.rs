//! Offline stand-in for `serde_derive`.
//!
//! Parses the item definition directly from the [`proc_macro`] token
//! stream (no `syn`/`quote`) and emits an implementation of this
//! workspace's reduced `serde::Serialize` trait
//! (`fn to_value(&self) -> serde::Value`). `Deserialize` derives a
//! marker impl only — nothing in the workspace deserializes.
//!
//! Supported shapes match what the workspace actually derives:
//! non-generic structs (named, tuple, unit) and non-generic enums with
//! unit, tuple and struct variants. Generic items are rejected with a
//! compile error rather than mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.serialize_impl().parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .unwrap()
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut kind = None;
    // Skip attributes (`#[...]`), doc comments and visibility.
    while let Some(tok) = toks.next() {
        match tok {
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub` (possibly followed by a `(crate)` group, consumed
                // by the group arm below as a no-op) or other modifiers.
            }
            TokenTree::Group(_) => {} // `(crate)` after `pub`
            _ => {}
        }
    }
    let kind = kind.expect("derive input: expected `struct` or `enum`");
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive input: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub: generic items are not supported (derive on `{name}`)");
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Body::NamedStruct(parse_named_fields(g.stream()))
            } else {
                Body::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "enum body must be brace-delimited");
            Body::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        other => panic!("derive input: unexpected item body {other:?}"),
    };
    Item { name, body }
}

/// Field names of a named-field list (attributes and visibility skipped;
/// types skipped with angle-bracket depth tracking so generic commas
/// don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("field list: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("field list: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(name);
    }
    fields
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_type(&mut toks);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("enum body: expected variant name, got {other:?}"),
        };
        let body = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                toks.next();
                VariantBody::Tuple(count_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                toks.next();
                VariantBody::Named(parse_named_fields(inner))
            }
            _ => VariantBody::Unit,
        };
        // Consume up to and including the variant separator (covers
        // explicit discriminants, which the workspace doesn't use today).
        for tok in toks.by_ref() {
            if matches!(tok, TokenTree::Punct(ref p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // [...]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next(); // (crate) / (super)
                }
            }
            _ => return,
        }
    }
}

/// Skip one type, stopping after the top-level `,` (consumed) or at end.
/// Commas inside `<...>` are part of the type; parenthesised/bracketed
/// types are whole groups so their commas are invisible here.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

impl Item {
    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::NamedStruct(fields) => object_expr(fields, "self."),
            Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
            Body::UnitStruct => "::serde::Value::Null".to_string(),
            Body::Enum(variants) => {
                let arms: Vec<String> = variants.iter().map(|v| v.arm(name)).collect();
                format!("match self {{ {} }}", arms.join(" "))
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        )
    }
}

/// `Value::Object` literal from field names; `prefix` is `self.` for
/// struct impls and empty for match-arm bindings.
fn object_expr(fields: &[String], prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

impl Variant {
    /// One `match self` arm using serde's externally-tagged layout:
    /// unit → `"Name"`, newtype → `{"Name": value}`,
    /// tuple → `{"Name": [..]}`, struct → `{"Name": {..}}`.
    fn arm(&self, enum_name: &str) -> String {
        let v = &self.name;
        match &self.body {
            VariantBody::Unit => {
                format!("{enum_name}::{v} => ::serde::Value::String(\"{v}\".to_string()),")
            }
            VariantBody::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                };
                format!(
                    "{enum_name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {payload})]),",
                    binds.join(", ")
                )
            }
            VariantBody::Named(fields) => {
                let payload = object_expr(fields, "");
                format!(
                    "{enum_name}::{v} {{ {} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), {payload})]),",
                    fields.join(", ")
                )
            }
        }
    }
}
