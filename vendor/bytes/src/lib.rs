//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the API this workspace uses: [`Bytes`]
//! (cheaply clonable, sliceable shared buffer backed by `Arc<[u8]>`),
//! [`BytesMut`] (growable buffer that freezes into `Bytes`), and the
//! [`BufMut`] put-methods `BytesMut` is used with. Zero-copy `clone` and
//! `slice` match the real crate; `from_static` copies once at creation,
//! which is irrelevant for correctness and for this workspace's scale.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds for {len}");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.inner.clone()), f)
    }
}

/// Write-side extension methods (the subset of `bytes::BufMut` used).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytesmut_put_and_freeze() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(7);
        m.put_u64_le(9);
        m.put_slice(b"ab");
        assert_eq!(m.len(), 14);
        let b = m.freeze();
        assert_eq!(&b[..4], &7u32.to_le_bytes());
        assert_eq!(&b[12..], b"ab");
    }

    #[test]
    fn equality_and_debug() {
        let b = Bytes::from_static(b"ab");
        assert_eq!(b, Bytes::from(vec![b'a', b'b']));
        assert_eq!(format!("{b:?}"), "b\"ab\"");
    }
}
