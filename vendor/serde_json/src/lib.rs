//! Offline stand-in for `serde_json`, backed by the serde stub's
//! value-tree model: `to_value` asks the type for its [`Value`] tree,
//! `to_string`/`to_string_pretty` render it as JSON text.

use serde::Serialize;

pub use serde::Value;

/// Serialization error. The value-tree model cannot fail, so this is
/// only here to keep `serde_json`-shaped signatures (`Result` + `?` /
/// `.unwrap()` call sites) compiling.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::render_compact(&value.to_value()))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::render_pretty(&value.to_value()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_through_api() {
        let v = to_value(vec![1u32, 2, 3]).unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert!(to_string_pretty(&v).unwrap().contains("\n  1,"));
    }
}
