//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the parking_lot API it actually uses:
//! [`Mutex`]/[`RwLock`] whose guards are obtained without a poison
//! `Result`. Internally these wrap `std::sync` primitives; a poisoned
//! lock (a panic while held) aborts loudly instead of propagating
//! poison, which matches parking_lot's no-poisoning semantics closely
//! enough for this workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
