//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the property-test surface this workspace uses — the
//! [`proptest!`] macro with `#![proptest_config(..)]`, `prop_assert*`,
//! [`prop_oneof!`], `any::<T>()`, range/tuple/`prop_map` strategies,
//! `prop::collection::vec`, `prop::sample::{subsequence, Index}` and
//! `prop::bool::ANY` — with two simplifications: sampling is plain
//! seeded-RNG generation (deterministic per test name and case index,
//! so failures reproduce run-to-run), and there is **no shrinking**: a
//! failing case reports the case index and message as a panic instead
//! of a minimized input. `max_shrink_iters` is accepted and ignored.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The RNG handed to strategies (re-exported so generated code and
    /// user helpers can name it).
    pub type TestRng = SmallRng;

    /// A generator of values. Object-safe: combinators are `Sized`-gated.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Always yields a clone of the given value.
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.gen())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod bool {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    pub struct BoolAny;

    /// `prop::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for sized collections: `n`, `a..b`, `a..=b`.
    pub trait IntoSizeRange {
        /// `(min, max_inclusive)`.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::collection::IntoSizeRange;
    use crate::strategy::{Strategy, TestRng};
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// An index sampled independently of the collection it will address
    /// (`any::<Index>()` then `.index(len)`).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Self(raw)
        }

        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    pub struct Subsequence<T> {
        values: Vec<T>,
        min: usize,
        max: usize,
    }

    /// Random subsequence of `values` (order-preserving) with a length
    /// in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl IntoSizeRange) -> Subsequence<T> {
        let (min, max) = size.size_bounds();
        assert!(
            max <= values.len(),
            "subsequence: max len {max} exceeds {} values",
            values.len()
        );
        Subsequence { values, min, max }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let len = rng.gen_range(self.min..=self.max);
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            idx.shuffle(rng);
            idx.truncate(len);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

pub mod test_runner {
    pub use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Accepted configuration knobs. Only `cases` changes behaviour;
    /// the rest exist so `..ProptestConfig::default()` call sites keep
    /// their upstream shape.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_local_rejects: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 1024,
                max_local_rejects: 65536,
                max_global_rejects: 1024,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// A failed property (what `prop_assert!` produces).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-(test, case) RNG: the same test name and case
    /// index always replay the same inputs.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    $(let $parm = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {}/{} failed: {}", __case, __config.cases, e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), __l, __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), __l, __r
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u32..100;
        let a: Vec<u32> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::case_rng("t", c)))
            .collect();
        let b: Vec<u32> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_machinery_works(
            x in 1u32..10,
            v in prop::collection::vec(any::<u8>(), 0..5),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            sub in prop::sample::subsequence(vec![1, 2, 3], 1..3),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(!sub.is_empty() && sub.len() <= 2);
            let _ = flag;
            if x == 0 {
                return Ok(());
            }
        }
    }
}
