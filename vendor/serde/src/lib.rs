//! Offline stand-in for the `serde` crate.
//!
//! Serialization here is direct-to-value-tree: [`Serialize`] is
//! `fn to_value(&self) -> Value` instead of the visitor-based
//! `Serializer` API, and [`Value`] doubles as the `serde_json::Value`
//! re-export. The workspace only ever serializes (report structs →
//! pretty JSON via `serde_json`), so [`Deserialize`] is a marker trait
//! that the derive implements but nothing consumes.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order preserved in output).
    Object(Vec<(String, Value)>),
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker for types the derive declares deserializable. No consumer in
/// this workspace parses data back, so the trait has no methods.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for f64 {}
impl Deserialize for f32 {}
impl Deserialize for bool {}
impl Deserialize for String {}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}
impl Deserialize for Duration {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Map keys become JSON object keys: strings pass through, everything
/// else uses its `Display`-free value rendering.
fn key_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Bool(b) => b.to_string(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        other => crate::json::render_compact(&other),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V> Deserialize for BTreeMap<K, V> {}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output regardless of hash order.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
impl<K, V> Deserialize for HashMap<K, V> {}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t),+> Deserialize for ($($t,)+) {}
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// JSON rendering of a [`Value`] tree (used by the `serde_json` stub).
pub mod json {
    use super::Value;
    use std::fmt::Write;

    pub fn render_compact(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, None, 0);
        out
    }

    pub fn render_pretty(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, Some(2), 0);
        out
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(n) => {
                if n.is_finite() {
                    // Match serde_json: integral floats keep a ".0".
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{n:.1}");
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, item, d| {
                    write_value(out, item, indent, d)
                });
            }
            Value::Object(pairs) => {
                write_seq(out, pairs.iter(), indent, depth, ('{', '}'), |out, (k, v), d| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, d);
                });
            }
        }
    }

    fn write_seq<T>(
        out: &mut String,
        items: impl ExactSizeIterator<Item = T>,
        indent: Option<usize>,
        depth: usize,
        (open, close): (char, char),
        mut write_item: impl FnMut(&mut String, T, usize),
    ) {
        out.push(open);
        let len = items.len();
        for (i, item) in items.enumerate() {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * (depth + 1)));
            }
            write_item(out, item, depth + 1);
            if i + 1 < len {
                out.push(',');
            }
        }
        if len > 0 {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
        }
        out.push(close);
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!("hi".to_string().to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(
            (1u32, "a").to_value(),
            Value::Array(vec![Value::U64(1), Value::String("a".into())])
        );
    }

    #[test]
    fn json_rendering() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(json::render_compact(&v), r#"{"a":1,"b":[true,null]}"#);
        let pretty = json::render_pretty(&v);
        assert!(pretty.contains("\"a\": 1"), "pretty output: {pretty}");
    }

    #[test]
    fn float_rendering_keeps_point() {
        assert_eq!(json::render_compact(&Value::F64(2.0)), "2.0");
        assert_eq!(json::render_compact(&Value::F64(2.5)), "2.5");
    }
}
