//! Offline stand-in for the `criterion` crate.
//!
//! Keeps bench targets compiling and runnable without the real
//! statistics engine: every benchmark closure executes exactly once
//! per invocation and the elapsed wall time is printed. That matches
//! how these targets are used in CI here — as smoke tests that the
//! bench harnesses still run — while `cargo bench` timing output stays
//! approximate.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver handed to bench closures.
pub struct Bencher {
    /// Wall time of the single iteration (read by the group printer).
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<I, O, S, R>(&mut self, setup: S, routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter_batched(setup, routine, BatchSize::SmallInput);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier (`function/parameter` naming).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level driver; configuration setters are accepted and ignored.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, f);
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {full}: {:?} (single iteration)", b.elapsed);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_bench_once() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Bytes(1));
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &7u32, |b, &x| {
                b.iter(|| {
                    runs += x as usize;
                    x
                })
            });
            g.finish();
        }
        assert_eq!(runs, 8);
    }
}
