//! End-to-end observability: run a chain with an injected node crash,
//! then export and analyze the causal trace.
//!
//! ```text
//! cargo run --release --example trace_dump
//! ```
//!
//! Writes `target/trace_dump.json` (Chrome `trace_event` format — load
//! it in Perfetto / `chrome://tracing`) and `target/trace_dump.jsonl`
//! (one span per line), then prints the deterministic analyzer views:
//! the span summary, the slot-occupancy profile (Fig. 4), the hot-spot
//! skew report over the recovery window (Fig. 6) and the recomputation
//! critical path.

use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ByteSize, ClusterConfig, ExecutorConfig, NodeId, SlotConfig};
use rcmp::obs::{
    hotspot_report, recomputation_critical_path, slot_occupancy, summary, to_chrome_json, to_jsonl,
    SpanKind,
};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 4;

fn main() {
    let cl = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 7,
    });
    // Replicate the input everywhere so every map read is served by a
    // local replica — the printed analyzer output is byte-identical
    // across runs.
    let mut gen = DataGenConfig::test("input", NODES, 12_000);
    gen.replication = NODES;
    generate_input(cl.dfs(), &gen).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();

    // Kill a node at the start of job 3: its unreplicated intermediate
    // outputs are lost and RCMP recomputes the cascade.
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(2),
    ));
    let outcome = ChainDriver::new(&cl, Strategy::rcmp_no_split())
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();

    let trace = cl.tracer().snapshot();

    // Export for interactive inspection.
    std::fs::create_dir_all("target").unwrap();
    std::fs::write("target/trace_dump.json", to_chrome_json(&trace)).unwrap();
    std::fs::write("target/trace_dump.jsonl", to_jsonl(&trace)).unwrap();
    println!(
        "jobs_started={} recompute_runs={}",
        outcome.jobs_started,
        outcome.events.recompute_runs()
    );
    println!("wrote target/trace_dump.json (Perfetto) and target/trace_dump.jsonl\n");

    println!("{}", summary(&trace));

    // Fig. 4: recomputation runs cannot fill the cluster's slots.
    println!("slot occupancy per run:");
    for run in slot_occupancy(&trace) {
        println!(
            "  seq {:>2}  job {:>2}  {}  waves {:>2}  avg occupancy {:.2}",
            run.seq,
            run.job,
            if run.recompute {
                "recompute"
            } else {
                "full     "
            },
            run.waves.len(),
            run.avg_occupancy()
        );
    }

    // Fig. 6: read-load concentration over the recovery window.
    let recompute_seqs: Vec<u64> = trace
        .spans()
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::JobRun {
                seq,
                recompute: true,
                ..
            } => Some(seq),
            _ => None,
        })
        .collect();
    if let (Some(&lo), Some(&hi)) = (recompute_seqs.iter().min(), recompute_seqs.iter().max()) {
        println!("\nhot-spot report over recovery window (seq {lo}..={hi}):");
        print!("{}", hotspot_report(&trace, lo, hi).render());
    }

    if let Some(path) = recomputation_critical_path(&trace) {
        println!("\n{}", path.render());
    }

    // The hot-path metric handles the tracker kept updated.
    let metrics = cl.metrics().snapshot();
    for name in ["tracker.task_retries", "tracker.shuffle_transient_failures"] {
        println!("{name} = {}", metrics.counter(name).unwrap_or(0));
    }
}
