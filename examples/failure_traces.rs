//! Fig. 2 / §III-A: are failures an ubiquitous threat at moderate
//! cluster sizes? Synthesizes STIC/SUG@R-like failure traces and prints
//! the CDF of new failures per day plus the summary statistics the
//! paper's argument rests on.
//!
//! ```text
//! cargo run --example failure_traces
//! ```

use rcmp::traces::{synthesize, Cdf, TraceProfile, TraceStats};

fn main() {
    for profile in [TraceProfile::stic(), TraceProfile::sugar()] {
        let trace = synthesize(&profile, 42);
        let stats = TraceStats::from_trace(&trace);
        let cdf = Cdf::from_observations(&trace);
        println!(
            "{} ({} nodes, {} days of daily checks):",
            profile.name, profile.nodes, profile.days
        );
        println!(
            "  days with new failures: {:.1}%  (paper: 17% STIC / 12% SUG@R)",
            stats.failure_day_fraction * 100.0
        );
        println!(
            "  mean days between failure days: {:.1}",
            stats.mean_days_between_failures
        );
        println!(
            "  worst day: {} nodes (outage events)",
            stats.max_in_one_day
        );
        println!("  CDF of new failures per day:");
        for threshold in [0u32, 1, 2, 5, 10, 40] {
            let pct = cdf.at(threshold) * 100.0;
            let bar = "#".repeat((pct / 2.5) as usize);
            println!("    <= {threshold:>2}: {pct:5.1}% {bar}");
        }
        println!();
    }
    println!(
        "The paper's point: at this scale failures are occasional — days\n\
         apart — so paying replication's I/O tax on *every* job run is\n\
         poor insurance; efficient recomputation pays only when a failure\n\
         actually happens."
    );
}
