//! Quickstart: run a 3-job chain on the real engine, kill a node
//! mid-chain, and watch RCMP recover with minimal recomputation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rcmp::core::{ChainDriver, ChainEvent, Strategy};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ByteSize, ClusterConfig, ExecutorConfig, NodeId, SlotConfig};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

fn main() {
    // A 5-node collocated cluster with 4 KiB blocks (tiny, so the whole
    // run takes milliseconds — the paper's 256 MiB blocks work the same
    // way, just bigger).
    let cluster = Cluster::new(ClusterConfig {
        nodes: 5,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        // Thread-per-slot by default; `RCMP_EXECUTOR=async` (or
        // `ExecutorConfig::async_auto()`) runs the same seeded
        // schedule on the cooperative reactor instead.
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 1,
    });

    // Triple-replicated random input, like the paper's job input.
    generate_input(cluster.dfs(), &DataGenConfig::test("input", 5, 40_000)).unwrap();
    let (input_digest, _) = digest_file(cluster.dfs(), "input", NodeId(0)).unwrap();
    println!(
        "input: {} records, {} value bytes",
        input_digest.count, input_digest.value_bytes
    );

    // The paper's I/O-intensive chain (3 jobs here), every job output
    // written with replication factor 1 — RCMP recovers by
    // recomputation, not replication.
    let chain = ChainBuilder::new(3, 5).build();

    // Kill node 2 right as job 3 starts: outputs of jobs 1 and 2 on that
    // node are lost, so job 3's input is broken and RCMP must cascade.
    let injector = Arc::new(ScriptedInjector::single(
        3,
        TriggerPoint::JobStart,
        NodeId(2),
    ));

    let driver = ChainDriver::new(&cluster, Strategy::rcmp_split(4)).with_injector(injector);
    let outcome = driver.run(&chain.jobs).unwrap();

    println!("\nmiddleware event log:");
    for event in outcome.events.iter() {
        match event {
            ChainEvent::JobStarted { seq, job, recompute } => {
                let kind = if *recompute { "RECOMPUTE" } else { "run" };
                println!("  #{seq}: {kind} {job}");
            }
            ChainEvent::JobCompleted {
                seq,
                map_tasks_run,
                map_tasks_reused,
                reduce_tasks_run,
                ..
            } => println!(
                "  #{seq}: done — {map_tasks_run} mappers run, {map_tasks_reused} reused, {reduce_tasks_run} reducers"
            ),
            ChainEvent::LossObserved { node, lost_partitions, .. } => println!(
                "  !! node {node:?} died, {lost_partitions} partitions irreversibly lost"
            ),
            ChainEvent::JobCancelled { seq, job } => {
                println!("  #{seq}: {job} cancelled (input lost)")
            }
            ChainEvent::RecoveryPlanned { target, steps, partitions } => println!(
                "  -> recovery plan for {target}: {steps} job(s), {partitions} partition(s)"
            ),
            other => println!("  {other:?}"),
        }
    }

    // The final output is byte-equivalent to a failure-free run: the
    // chain's digest is a pure function of the input.
    let (digest, _) =
        digest_file(cluster.dfs(), chain.final_output(), cluster.live_nodes()[0]).unwrap();
    println!(
        "\nfinal output: {} records, {} value bytes (records conserved: {})",
        digest.count,
        digest.value_bytes,
        digest.count == input_digest.count
    );
    println!(
        "total job runs started: {} (3 initial + recomputations)",
        outcome.jobs_started
    );
    assert_eq!(digest.count, input_digest.count);
}
