//! Simulates the paper's DCO experiment at full scale — 60 nodes,
//! 1.2 TB of input, 7 I/O-intensive jobs — under a late failure, and
//! prints the per-run timeline for each strategy.
//!
//! ```text
//! cargo run --release --example paper_scale_sim
//! ```

use rcmp::core::Strategy;
use rcmp::sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};

fn main() {
    let wl = WorkloadCfg::dco();
    println!(
        "DCO-scale simulation: {} nodes × {} = {} input, {} jobs, failure 15 s into job 7\n",
        wl.nodes,
        wl.per_node_input,
        wl.total_input(),
        wl.jobs
    );

    for (label, strategy) in [
        ("RCMP SPLIT (59)", Strategy::rcmp_split(59)),
        ("RCMP NO-SPLIT", Strategy::rcmp_no_split()),
        ("HADOOP REPL-3", Strategy::Replication { factor: 3 }),
        ("OPTIMISTIC", Strategy::Optimistic),
    ] {
        let cfg = ChainSimConfig::new(HwProfile::dco(), wl.clone(), strategy)
            .with_failures(vec![FailureAt::at_job(7, wl.nodes - 1)]);
        let rep = simulate_chain(&cfg);
        println!(
            "{label}: total {:.0} s over {} job runs",
            rep.total_time, rep.jobs_started
        );
        for run in &rep.runs {
            let kind = if run.recompute {
                "recompute"
            } else {
                "run      "
            };
            println!(
                "    #{:<2} {kind} job {}: {:>7.1} s  ({} map waves, {} reduce tasks, {} mappers run / {} reused)",
                run.seq, run.job, run.duration, run.map_waves, run.reduce_tasks_run,
                run.mappers_run, run.mappers_reused
            );
        }
        println!();
    }
    println!(
        "Shapes to notice (paper Fig. 8c): recomputation runs are a small\n\
         fraction of a full job; splitting shrinks them further by using\n\
         all 59 survivors; OPTIMISTIC pays for the whole chain twice."
    );
}
