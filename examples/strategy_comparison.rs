//! Compares the failure-resilience strategies on the real engine: task
//! counts, I/O volumes, and recovery behaviour under the same late
//! failure — RCMP (split / no-split), Hadoop-style replication, and
//! OPTIMISTIC.
//!
//! ```text
//! cargo run --example strategy_comparison
//! ```
//!
//! Wall-clock times at this (in-memory) scale are meaningless; the
//! interesting columns are how much work each strategy performs, which
//! is what drives the paper's Fig. 8.

use rcmp::core::strategy::HotspotMitigation;
use rcmp::core::{ChainDriver, SplitPolicy, Strategy};
use rcmp::engine::{Cluster, ScriptedInjector, TriggerPoint};
use rcmp::model::{ByteSize, ClusterConfig, ExecutorConfig, NodeId, SlotConfig};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const JOBS: u32 = 5;
const NODES: u32 = 6;

fn run(strategy: Strategy, label: &str) {
    let cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 99,
    });
    generate_input(cluster.dfs(), &DataGenConfig::test("input", NODES, 30_000)).unwrap();
    let chain = ChainBuilder::new(JOBS, NODES).build();
    // One failure late in the chain (as job 5 starts).
    let injector = Arc::new(ScriptedInjector::single(
        JOBS as u64,
        TriggerPoint::JobStart,
        NodeId(1),
    ));
    let outcome = ChainDriver::new(&cluster, strategy)
        .with_injector(injector)
        .run(&chain.jobs)
        .unwrap();
    let io = outcome.total_io();
    let (digest, _) =
        digest_file(cluster.dfs(), chain.final_output(), cluster.live_nodes()[0]).unwrap();
    println!(
        "{label:<22} runs={:<3} restarts={} maps={:<4} reduces={:<3} shuffle={:>9} out+repl={:>9}  records={}",
        outcome.jobs_started,
        outcome.restarts,
        outcome.total_map_tasks(),
        outcome.total_reduce_tasks(),
        format!("{}", ByteSize::bytes(io.shuffle_total())),
        format!(
            "{}",
            ByteSize::bytes(io.output_written + io.replication_written)
        ),
        digest.count,
    );
}

fn main() {
    println!(
        "{}-job chain on {} nodes, one failure as the last job starts:\n",
        JOBS, NODES
    );
    run(Strategy::rcmp_split(5), "RCMP (split 5)");
    run(Strategy::rcmp_no_split(), "RCMP (no split)");
    run(
        Strategy::Rcmp {
            split: SplitPolicy::None,
            hotspot: HotspotMitigation::SpreadOutput,
        },
        "RCMP (spread output)",
    );
    run(Strategy::Replication { factor: 2 }, "Hadoop REPL-2");
    run(Strategy::Replication { factor: 3 }, "Hadoop REPL-3");
    run(Strategy::Optimistic, "OPTIMISTIC");
    run(
        Strategy::Hybrid {
            split: SplitPolicy::Fixed(5),
            every_k: 2,
            factor: 2,
            reclaim: true,
        },
        "Hybrid (k=2, reclaim)",
    );
    println!(
        "\nEvery row ends with the same record count: all strategies are\n\
         output-equivalent; they differ in how much work failures cost.\n\
         Replication rows show the write amplification (out+repl column)\n\
         paid on every run, failure or not; RCMP rows show extra job runs\n\
         only when a failure actually happened."
    );
}
