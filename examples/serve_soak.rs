//! The multi-tenant job service at the public API surface: three
//! tenants share one cluster through `rcmp::serve::JobService` —
//! admission backpressure, weighted fair-share scheduling, per-tenant
//! tracing — then the canonical soak scenarios run end to end and
//! print the serve benchmark table (throughput, p50/p99, Jain's
//! fairness index).
//!
//! ```text
//! cargo run --release --example serve_soak
//! ```

use rcmp::core::Strategy;
use rcmp::engine::Cluster;
use rcmp::model::{ClusterConfig, Error, ExecutorConfig, ServeConfig, TenantId};
use rcmp::obs::tenant_view;
use rcmp::policy::TenantShare;
use rcmp::serve::soak::{run_scenario, SoakScenario};
use rcmp::serve::{ChainRequest, JobService};
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 6;
const PARTITIONS: u32 = 4;

fn main() {
    // --- Part 1: the submission loop, spelled out. -------------------
    let mut cfg = ClusterConfig::small_test(NODES);
    cfg.executor = ExecutorConfig::from_env_or_default();
    let cluster = Arc::new(Cluster::new(cfg));
    generate_input(
        cluster.dfs(),
        &DataGenConfig::test("input", PARTITIONS, 20_000),
    )
    .unwrap();

    let service = JobService::new(
        Arc::clone(&cluster),
        ServeConfig {
            queue_depth: 2,
            max_concurrent_chains: 3,
            worker_budget: 6,
            workers_per_chain: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Three tenants: two equal-share, one with double weight.
    let tenants = [(TenantId(0), 1u32), (TenantId(1), 1), (TenantId(2), 2)];
    for (tenant, weight) in tenants {
        service.register_tenant(
            tenant,
            TenantShare {
                weight,
                max_in_flight: weight,
            },
        );
    }

    // Each tenant submits 3 chains; a full queue answers with the
    // typed rejection and a seeded retry-after hint we honour.
    let mut tickets = Vec::new();
    for round in 0..3u32 {
        for (i, (tenant, _)) in tenants.iter().enumerate() {
            let chain = ChainBuilder::new(2, PARTITIONS)
                .input("input")
                .namespace(format!("{tenant}/c{round}/"), (i as u32 * 3 + round) * 100)
                .build();
            let submit = || {
                ChainRequest::new(*tenant, chain.jobs.clone(), Strategy::rcmp_split(3))
                    .with_label(format!("{tenant}/c{round}"))
            };
            loop {
                match service.submit(submit()) {
                    Ok(ticket) => {
                        tickets.push(ticket);
                        break;
                    }
                    Err(Error::AdmissionRejected {
                        tenant,
                        retry_after_ms,
                    }) => {
                        println!("{tenant}: queue full, retrying in {retry_after_ms} ms");
                        std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.max(1)));
                    }
                    Err(e) => panic!("submission failed: {e}"),
                }
            }
        }
    }
    for ticket in tickets {
        let result = ticket.wait().unwrap();
        let summary = result.outcome.expect("no faults injected");
        println!(
            "{} resolved: {} job runs, granted #{}, {} ms",
            result.label, summary.jobs_started, result.grant_seq, result.latency_ms
        );
    }

    // Per-tenant observability: each tenant's runs filter cleanly out
    // of the shared trace.
    let trace = cluster.tracer().snapshot();
    for (tenant, _) in tenants {
        let view = tenant_view(&trace, tenant);
        println!("{tenant}: {} spans in its tenant view", view.spans.len());
    }
    let snapshot = cluster.metrics().snapshot();
    println!(
        "admitted = {}, rejected = {}",
        snapshot.counter("serve.admitted").unwrap_or(0),
        snapshot.counter("serve.rejected").unwrap_or(0)
    );

    // --- Part 2: the canonical soak scenarios. -----------------------
    for scenario in [
        SoakScenario::balanced(),
        SoakScenario::weighted(),
        SoakScenario::chaos(0x5eed),
    ] {
        let report = run_scenario(&scenario).unwrap();
        println!(
            "\n[{}] {} chains: {} ok / {} failed, {:.1} chains/s, p50 {} ms, p99 {} ms, jain {:.3}, {} verified / {} mismatched",
            report.scenario,
            report.chains,
            report.completed,
            report.failed,
            report.throughput_cps,
            report.p50_ms,
            report.p99_ms,
            report.jain,
            report.digests_verified,
            report.digest_mismatches,
        );
        assert_eq!(report.digest_mismatches, 0);
    }
}
