//! Chaos fault injection at the public API surface: scripted replica
//! corruption, a seeded randomized fault schedule, and typed
//! escalation when the retry budget runs out.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use rcmp::core::{ChainDriver, Strategy};
use rcmp::engine::failure::Fault;
use rcmp::engine::{Cluster, RandomizedInjector, ScriptedInjector, TriggerPoint};
use rcmp::model::{ByteSize, ClusterConfig, Error, ExecutorConfig, NodeId, SlotConfig};
use rcmp::workloads::checksum::digest_file;
use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
use std::sync::Arc;

const NODES: u32 = 5;
const JOBS: u32 = 4;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        slots: SlotConfig::ONE_ONE,
        block_size: ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: ExecutorConfig::from_env_or_default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 7,
    })
}

fn setup(cl: &Cluster) -> rcmp::workloads::ChainSpec {
    generate_input(cl.dfs(), &DataGenConfig::test("input", NODES, 12_000)).unwrap();
    ChainBuilder::new(JOBS, NODES).build()
}

fn main() {
    // Failure-free reference digest for the 4-job chain.
    let golden = {
        let cl = cluster();
        let chain = setup(&cl);
        ChainDriver::new(&cl, Strategy::rcmp_no_split())
            .run(&chain.jobs)
            .unwrap();
        digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0
    };
    println!("golden digest (failure-free run): {golden:?}\n");

    // 1. Silent replica corruption under REPL-2: the block checksum
    //    catches it on read, the replica is demoted, and the survivor
    //    serves the data — no recomputation, exact output.
    {
        let cl = cluster();
        let chain = setup(&cl);
        let injector = Arc::new(ScriptedInjector::single_fault(
            2,
            TriggerPoint::JobStart,
            Fault::CorruptReplica { node: NodeId(1) },
        ));
        let outcome = ChainDriver::new(&cl, Strategy::Replication { factor: 2 })
            .with_injector(injector)
            .run(&chain.jobs)
            .unwrap();
        let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
            .unwrap()
            .0;
        println!(
            "corrupt replica under REPL-2: jobs_started={} restarts={} digest_ok={}",
            outcome.jobs_started,
            outcome.restarts,
            digest == golden
        );
    }

    // 2. Seeded randomized chaos: kills, corruption, torn writes and
    //    shuffle flakes mixed by seed. The contract is binary — exact
    //    golden digest or a typed recovery error — and the schedule is
    //    a pure function of the seed.
    for seed in [3u64, 17, 41] {
        let cl = cluster();
        let chain = setup(&cl);
        let injector = Arc::new(
            RandomizedInjector::new(seed, NODES)
                .kill_probability(0.08)
                .fault_probability(0.25),
        );
        let result = ChainDriver::new(&cl, Strategy::rcmp_split(3))
            .with_injector(injector.clone())
            .run(&chain.jobs);
        match result {
            Ok(outcome) => {
                let digest = digest_file(cl.dfs(), chain.final_output(), cl.live_nodes()[0])
                    .unwrap()
                    .0;
                println!(
                    "chaos seed {seed}: converged, jobs_started={} faults_injected={:?} digest_ok={}",
                    outcome.jobs_started,
                    injector.faults_raised(),
                    digest == golden
                );
            }
            Err(e) => println!("chaos seed {seed}: typed error: {e}"),
        }
    }

    // 3. Typed escalation: a shuffle path that never stops failing
    //    exhausts the bounded retry budget instead of livelocking.
    {
        let cl = Cluster::new(ClusterConfig {
            nodes: 1,
            slots: SlotConfig::ONE_ONE,
            block_size: ByteSize::kib(4),
            failure_detection_secs: 30.0,
            max_recovery_attempts: 100,
            executor: ExecutorConfig::from_env_or_default(),
            shuffle: Default::default(),
            retry: Default::default(),
            placement: Default::default(),
            chain_cache: Default::default(),
            seed: 7,
        });
        let mut gen = DataGenConfig::test("input", 1, 4_000);
        gen.replication = 1;
        generate_input(cl.dfs(), &gen).unwrap();
        let chain = ChainBuilder::new(1, 1).build();
        let injector = Arc::new(ScriptedInjector::single_fault(
            1,
            TriggerPoint::JobStart,
            Fault::ShuffleFlake {
                node: NodeId(0),
                times: u32::MAX,
            },
        ));
        let err = ChainDriver::new(&cl, Strategy::rcmp_no_split())
            .with_injector(injector)
            .run(&chain.jobs)
            .unwrap_err();
        assert!(matches!(err, Error::RecoveryExhausted { .. }));
        println!("\npermanent shuffle flake escalates: {err}");
    }

    // 4. Config validation: a zero recovery budget is rejected up
    //    front, and out-of-range injector probabilities clamp instead
    //    of panicking mid-chain.
    {
        let mut cfg = ClusterConfig::small_test(NODES);
        cfg.max_recovery_attempts = 0;
        println!("zero recovery budget: {}", cfg.validate().unwrap_err());

        let cl = cluster();
        let chain = setup(&cl);
        let injector = Arc::new(RandomizedInjector::new(5, NODES).kill_probability(1.5));
        let result = ChainDriver::new(&cl, Strategy::rcmp_no_split())
            .with_injector(injector)
            .run(&chain.jobs);
        println!(
            "kill_probability(1.5) clamps to certainty, no panic: outcome={}",
            match result {
                Ok(o) => format!("converged after {} job runs", o.jobs_started),
                Err(e) => format!("typed error: {e}"),
            }
        );
    }
}
